"""State comparison and 2-out-of-3 majority voting.

Comparison semantics follow :mod:`repro.vds.state`: two states match iff
they are at the same round and carry the same corruption identity (both
``None`` for clean states).  The majority vote is the paper's §3.1
stop-and-retry decision: "a majority vote over three available states
allows to distinguish the faulty state".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RecoveryError
from repro.vds.state import VersionState

__all__ = ["states_match", "majority_vote", "VoteResult"]


def states_match(a: VersionState, b: VersionState) -> bool:
    """True iff the two versions' states would compare equal."""
    return a.round == b.round and a.corruption_id == b.corruption_id


@dataclass(frozen=True, slots=True)
class VoteResult:
    """Outcome of a 2-out-of-3 vote.

    ``faulty_version`` is ``None`` when no majority exists (all three
    states differ — the paper's "additional fault during recovery" case,
    which forces a rollback).
    """

    faulty_version: Optional[int]
    majority_state: Optional[VersionState]

    @property
    def has_majority(self) -> bool:
        return self.faulty_version is not None


def majority_vote(a: VersionState, b: VersionState,
                  c: VersionState) -> VoteResult:
    """2-out-of-3 vote over the states of versions a, b and the retry c.

    Exactly one pair matching identifies the odd one out as faulty.  All
    three matching is rejected (a vote is only taken after a mismatch was
    detected, so this indicates a protocol bug).  No pair matching returns
    the no-majority result.
    """
    ab = states_match(a, b)
    ac = states_match(a, c)
    bc = states_match(b, c)
    if ab and ac and bc:
        raise RecoveryError(
            "majority vote called although all three states agree"
        )
    if ac and not ab:
        return VoteResult(faulty_version=b.version, majority_state=a)
    if bc and not ab:
        return VoteResult(faulty_version=a.version, majority_state=b)
    if ab:
        # The two original versions agree and the retry differs: the retry
        # (or its processor) took the fault.
        return VoteResult(faulty_version=c.version, majority_state=a)
    return VoteResult(faulty_version=None, majority_state=None)
