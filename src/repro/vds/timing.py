"""Architecture timing primitives for the VDS simulation.

The recovery schemes are *policies*; how long their primitive actions take
depends on the processor architecture.  Each :class:`ArchTiming` exposes:

``normal_round()``
    one complete VDS round of the two active versions, including the state
    comparison (Eq. (1) on the conventional CPU, Eq. (3) on 2-way SMT);
``run_single(k)``
    ``k`` rounds of a single version with no other thread active (footnote
    1: a lone thread runs at conventional speed — ``k·t`` everywhere);
``run_pair(k)``
    ``k`` rounds in each of two concurrently busy hardware threads
    (``2·k·α·t`` on SMT; on the conventional CPU the work serialises to
    ``2·k·(t + c)``, context switches included);
``run_n(k, n)``
    ``k`` rounds in each of ``n`` busy threads (§5 extension);
``compare()`` / ``switch()``
    one state comparison ``t′`` / one context switch ``c``;
``vote_overhead()``
    the trailing ``2·t′`` of a recovery (Eq. (2) / Eq. (5); honours the
    footnote-3 ``max(t′, c)`` option on SMT).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.params import AlphaCurve, VDSParameters
from repro.errors import ConfigurationError

__all__ = ["ArchTiming", "ConventionalTiming", "SMT2Timing", "SMTnTiming"]


@dataclass(frozen=True)
class ArchTiming(ABC):
    """Timing primitives of one processor architecture."""

    params: VDSParameters

    #: hardware threads available to recovery schemes
    hardware_threads: int = 1

    @property
    def name(self) -> str:
        return type(self).__name__

    @abstractmethod
    def normal_round(self) -> float:
        """One complete VDS round (both versions + comparison)."""

    def run_single(self, k: float) -> float:
        """``k`` rounds of one version alone (α = 1 alone, footnote 1)."""
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        return k * self.params.t

    @abstractmethod
    def run_pair(self, k: float) -> float:
        """``k`` rounds in each of two concurrently executing versions."""

    def run_n(self, k: float, n: int) -> float:
        """``k`` rounds in each of ``n`` concurrent versions."""
        if n == 1:
            return self.run_single(k)
        if n == 2:
            return self.run_pair(k)
        raise ConfigurationError(
            f"{self.name} supports at most 2 concurrent versions"
        )

    def compare(self) -> float:
        return self.params.t_cmp

    def switch(self) -> float:
        return self.params.c

    def vote_overhead(self) -> float:
        """The two comparisons of the majority vote."""
        return 2.0 * self.params.t_cmp


@dataclass(frozen=True)
class ConventionalTiming(ArchTiming):
    """Single-threaded processor (Fig. 1(a))."""

    hardware_threads: int = 1

    def normal_round(self) -> float:
        # Eq. (1): V1 round, switch, V2 round, switch, compare.
        p = self.params
        return 2.0 * (p.t + p.c) + p.t_cmp

    def run_pair(self, k: float) -> float:
        """Two versions time-share: 2k rounds plus 2k context switches."""
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        p = self.params
        return 2.0 * k * (p.t + p.c)


@dataclass(frozen=True)
class SMT2Timing(ArchTiming):
    """2-way simultaneous multithreaded processor (Fig. 1(b))."""

    hardware_threads: int = 2

    def normal_round(self) -> float:
        # Eq. (3): both versions in parallel, then compare.
        p = self.params
        return 2.0 * p.alpha * p.t + p.t_cmp

    def run_pair(self, k: float) -> float:
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        return 2.0 * k * self.params.alpha * self.params.t

    def vote_overhead(self) -> float:
        # Eq. (5) trailing term; footnote 3: exactly, max(t′, c).
        return 2.0 * self.params.cmp_or_switch


@dataclass(frozen=True)
class SMTnTiming(SMT2Timing):
    """SMT processor with ``n`` hardware threads (§5 extension)."""

    hardware_threads: int = 3
    curve: AlphaCurve = AlphaCurve()

    def __post_init__(self) -> None:
        if self.hardware_threads < 2:
            raise ConfigurationError("SMTnTiming needs >= 2 hardware threads")

    def run_n(self, k: float, n: int) -> float:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if n > self.hardware_threads:
            raise ConfigurationError(
                f"{n} concurrent versions exceed {self.hardware_threads} "
                "hardware threads"
            )
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        if n == 1:
            return self.run_single(k)
        return n * self.curve(n) * k * self.params.t
