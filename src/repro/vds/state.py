"""Abstract version states for the timing-level VDS simulation.

The DES does not re-execute programs (the ISA level does that in
:mod:`repro.faults.campaign`); it tracks the *logical* state each version
has reached: which round it has completed and whether a fault has
corrupted it.  Two constraints from the paper's fault model (§2.1) shape
the representation:

* "a fault may not corrupt states/output of any two versions in the same
  way" — each corruption carries a unique ``corruption_id``, so corrupted
  states never compare equal to each other or to clean states;
* a clean state is fully determined by the round number — all fault-free
  versions at round ``r`` compare equal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["VersionState", "clean_state", "corrupt_state"]

_corruption_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class VersionState:
    """The logical state of one version.

    Attributes
    ----------
    version:
        1-based version number (1, 2 = active pair; 3 = spare).
    round:
        Rounds completed since the last checkpoint.
    corruption_id:
        ``None`` for a fault-free state; otherwise a unique token
        identifying the corrupting fault.
    """

    version: int
    round: int
    corruption_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ConfigurationError(f"version must be >= 1, got {self.version}")
        if self.round < 0:
            raise ConfigurationError(f"round must be >= 0, got {self.round}")

    @property
    def is_clean(self) -> bool:
        return self.corruption_id is None

    def advanced(self, rounds: int = 1) -> "VersionState":
        """The state after completing ``rounds`` more rounds.

        Corruption propagates: a corrupted version stays corrupted (with
        the same identity) as it keeps computing on bad data.
        """
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        return VersionState(self.version, self.round + rounds,
                            self.corruption_id)

    def corrupted(self) -> "VersionState":
        """The state after a fresh fault strikes this version."""
        return VersionState(self.version, self.round, next(_corruption_ids))

    def as_version(self, version: int) -> "VersionState":
        """The same logical state adopted by another version (state copy,
        e.g. 'the state of the fault-free version is copied to version 3')."""
        return VersionState(version, self.round, self.corruption_id)


def clean_state(version: int, round_: int = 0) -> VersionState:
    """A fault-free state of ``version`` at ``round_``."""
    return VersionState(version, round_)


def corrupt_state(version: int, round_: int) -> VersionState:
    """A freshly corrupted state (unique corruption identity)."""
    return VersionState(version, round_).corrupted()
