"""repro — Virtual Duplex Systems on Simultaneous Multithreaded Processors.

A full reproduction of

    Bernhard Fechner, Jörg Keller, Peter Sobe:
    "Performance Estimation of Virtual Duplex Systems on Simultaneous
    Multithreaded Processors", IPDPS Workshops (FTPDS), 2004.

The library provides:

* :mod:`repro.core` — the paper's analytical performance model: round and
  correction times on conventional and 2-way SMT processors, the gain of
  the deterministic / probabilistic / prediction-based roll-forward schemes
  (Eqs. (1)–(13)), limits (``G_max``), and the Fig. 4/5 gain surfaces.
* :mod:`repro.sim` — a discrete-event simulation engine (event queue,
  generator-based processes, resources, traces) built from scratch.
* :mod:`repro.smt` — a slot-level simultaneous-multithreaded processor
  simulator in which the paper's α parameter *emerges* from issue-slot
  contention between hardware threads.
* :mod:`repro.isa` — a tiny register-machine ISA (assembler, interpreter,
  program library) used as the substrate on which program *versions* run.
* :mod:`repro.diversity` — automatic generation of design-/systematically-
  diverse versions of ISA programs (paper refs [4], [6]).
* :mod:`repro.coding` — error-detecting/correcting codes (parity, CRC,
  Hamming) and EDC-protected memory (paper §2.1).
* :mod:`repro.faults` — transient / permanent / crash fault models, Poisson
  and environment-based arrival processes, and an injection campaign driver.
* :mod:`repro.vds` — the virtual duplex system runtime: versions, rounds,
  state comparison, checkpointing, and every recovery scheme in the paper
  (rollback, stop-and-retry, roll-forward deterministic/probabilistic,
  prediction-based, and the ≥3-hardware-thread extensions of §5).
* :mod:`repro.predict` — fault predictors ("similar to branch prediction",
  §5): random, crash-evidence, saturating-counter history, Bayesian.
* :mod:`repro.analysis` — parameter sweeps, metrics, analytic-vs-simulated
  comparison, and ASCII rendering of the paper's figures/tables.
* :mod:`repro.obs` — observability: span-based structured tracing (JSONL),
  a mergeable metrics registry (Prometheus text exposition), wall-clock
  profiling, and stdlib ``logging`` wiring — all zero-overhead when off.
* :mod:`repro.experiments` — a registry regenerating every figure and table
  (see DESIGN.md §4 and EXPERIMENTS.md).

Quickstart
----------
>>> from repro.core import VDSParameters, gain_limit, prediction_scheme_mean_gain
>>> params = VDSParameters(alpha=0.65, beta=0.1, s=20)
>>> round(prediction_scheme_mean_gain(params, p=0.5), 2)   # at s = 20
1.35
>>> round(gain_limit(params, p=0.5), 2)                    # the paper's G_max
1.38
"""

import logging as _logging

from repro._version import __version__
from repro.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    FaultModelError,
    RecoveryError,
)
from repro.core.params import VDSParameters

# Stdlib library-logging convention: a NullHandler on the package root
# so importing repro never prints; applications (and the CLI's
# --log-level flag) opt in via repro.obs.configure_logging.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "FaultModelError",
    "RecoveryError",
    "VDSParameters",
]
