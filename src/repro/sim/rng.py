"""Reproducible named random substreams.

Every stochastic component of the reproduction (fault arrivals, fault
locations, predictor noise, workload generation, SMT contention jitter)
draws from its *own* named stream derived from a single master seed via
``numpy.random.SeedSequence.spawn``-style key derivation.  This gives:

* bit-identical experiment reruns from one ``seed``;
* *independence*: adding draws to one component does not perturb another
  (crucial when comparing recovery schemes on identical fault sequences);
* common-random-numbers variance reduction across scheme comparisons.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A keyed family of independent :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> faults = streams.get("faults")
    >>> again = RandomStreams(seed=42).get("faults")
    >>> float(faults.random()) == float(again.random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created deterministically on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (master seed, stream name) only, so
            # creation *order* does not matter.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32
            )
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=tuple(int(x) for x in digest)
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, n: int) -> list[np.random.Generator]:
        """``n`` further independent streams below ``name`` (for replicas)."""
        return [self.get(f"{name}/{i}") for i in range(n)]

    def names(self) -> Iterator[str]:
        return iter(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
