"""Reproducible named random substreams.

Every stochastic component of the reproduction (fault arrivals, fault
locations, predictor noise, workload generation, SMT contention jitter)
draws from its *own* named stream derived from a single master seed via
``numpy.random.SeedSequence.spawn``-style key derivation.  This gives:

* bit-identical experiment reruns from one ``seed``;
* *independence*: adding draws to one component does not perturb another
  (crucial when comparing recovery schemes on identical fault sequences);
* common-random-numbers variance reduction across scheme comparisons.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

__all__ = ["RandomStreams", "SeedLike", "derive_seed_sequence",
           "spawn_trial_sequences"]

#: Anything a campaign accepts as its master randomness source.
SeedLike = Union[int, np.integer, np.random.SeedSequence, np.random.Generator]


def derive_seed_sequence(source: SeedLike) -> np.random.SeedSequence:
    """Normalise ``source`` into a :class:`numpy.random.SeedSequence`.

    * an ``int`` becomes ``SeedSequence(int)`` — the canonical master seed;
    * a ``SeedSequence`` passes through unchanged;
    * a ``Generator`` contributes one 63-bit draw as entropy, so legacy
      callers holding a generator still get a deterministic seed tree
      (the derivation consumes exactly one draw regardless of how the
      tree is later sharded).
    """
    if isinstance(source, np.random.SeedSequence):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.SeedSequence(int(source))
    if isinstance(source, np.random.Generator):
        return np.random.SeedSequence(int(source.integers(0, 2**63)))
    raise TypeError(
        f"expected int, SeedSequence or Generator, got {type(source).__name__}"
    )


def spawn_trial_sequences(source: SeedLike,
                          n: int) -> list[np.random.SeedSequence]:
    """``n`` per-trial child sequences of the master seed.

    Children are derived with :meth:`numpy.random.SeedSequence.spawn`, so
    trial ``i`` sees the same stream no matter how trials are later
    chunked across workers — the foundation of the ``n_workers``-
    independence guarantee of :func:`repro.faults.campaign.run_campaign`.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return derive_seed_sequence(source).spawn(n)


class RandomStreams:
    """A keyed family of independent :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> faults = streams.get("faults")
    >>> again = RandomStreams(seed=42).get("faults")
    >>> float(faults.random()) == float(again.random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created deterministically on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from (master seed, stream name) only, so
            # creation *order* does not matter.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32
            )
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=tuple(int(x) for x in digest)
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, n: int) -> list[np.random.Generator]:
        """``n`` further independent streams below ``name`` (for replicas)."""
        return [self.get(f"{name}/{i}") for i in range(n)]

    def names(self) -> Iterator[str]:
        return iter(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
