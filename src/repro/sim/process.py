"""Generator-based simulation processes.

A process wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.sim.engine.Event` objects; the process sleeps until the
yielded event fires and is then resumed with the event's value (or, if the
event failed, the exception is thrown into the generator).

A :class:`Process` is itself an event: it fires when the generator returns
(value = the generator's return value) or raises.  This lets processes wait
for each other (fork/join), which the VDS controller uses to join the two
version threads at a comparison barrier.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, EventStatus, Interrupt, Simulator

__all__ = ["Process", "ProcessKilled"]


class ProcessKilled(Exception):
    """Raised inside a process that was killed via :meth:`Process.kill`."""


class Process(Event):
    """A running generator inside the simulation.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        A generator yielding events.
    name:
        Optional label used in traces and error messages.
    """

    __slots__ = ("_generator", "_waiting_on", "_started")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._started = False
        # Kick off the generator as an urgent event at the current time.
        boot = Event(sim, f"{self.name}.boot")
        boot._value = None
        boot._status = EventStatus.SCHEDULED
        sim._schedule_urgent(boot, ok=True)
        boot.add_callback(self._resume)

    # -- introspection ----------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered and self._status is not EventStatus.SCHEDULED

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process currently sleeps on (None if running/done)."""
        return self._waiting_on

    # -- control ------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current event and receives the
        interrupt at its ``yield`` statement.  Used by the fault injector to
        strike a version mid-round.
        """
        if self.triggered or self._status is EventStatus.SCHEDULED:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is None and not self._started:
            raise SimulationError(f"cannot interrupt unstarted {self!r}")
        target = self._waiting_on
        if target is not None:
            target.remove_callback(self._resume)
            self._waiting_on = None
        kick = Event(self.sim, f"{self.name}.interrupt")
        kick._value = Interrupt(cause)
        kick._status = EventStatus.SCHEDULED
        self.sim._schedule_urgent(kick, ok=False)
        kick.defuse()
        kick.add_callback(self._resume)

    def kill(self) -> None:
        """Terminate the process; it fires as *failed* with ProcessKilled.

        Downstream waiters must defuse/handle the failure.  Models the
        paper's "a fault is able to stop a version and also to stop the
        entire processor including all versions" (§2.1).
        """
        if self.triggered or self._status is EventStatus.SCHEDULED:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._resume)
            self._waiting_on = None
        self._generator.close()
        self.fail(ProcessKilled(self.name))
        self._defused = True

    # -- engine callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._started = True
        self._waiting_on = None
        tracer = self.sim._tracer
        if tracer is not None:
            tracer.point("sim.resume", vt=self.sim.now, process=self.name,
                         ok=event.ok)
        prev = self.sim._active_process
        self.sim._active_process = self
        try:
            if event.ok:
                target = self._generator.send(event._value)
            elif isinstance(event._value, Interrupt):
                target = self._generator.throw(event._value)
            else:
                event.defuse()
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = prev

        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        if target is self:
            self._generator.close()
            self.fail(SimulationError(f"process {self.name!r} waits on itself"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
