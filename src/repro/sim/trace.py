"""Trace recording and Gantt-timeline reconstruction.

The paper's Fig. 1 shows the execution models of a VDS on a conventional and
on a multithreaded processor as timelines of *segments* (version rounds,
context switches, state comparisons, checkpoints, majority votes).  The VDS
runtime emits point events into a :class:`TraceRecorder`; paired
``begin``/``end`` events are folded into :class:`GanttSegment` rows so the
figure can be regenerated as text (see :mod:`repro.analysis.report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

__all__ = ["TraceEntry", "GanttSegment", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One timestamped event."""

    time: float
    category: str           #: e.g. ``"round"``, ``"compare"``, ``"switch"``
    label: str              #: e.g. ``"V1.R3"``
    lane: str = ""          #: timeline row, e.g. ``"T1"`` (hardware thread 1)
    phase: str = "begin"    #: ``"begin"`` | ``"end"`` | ``"point"``
    data: Any = None


@dataclass(frozen=True, slots=True)
class GanttSegment:
    """A closed interval on one lane of the timeline."""

    lane: str
    category: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "GanttSegment") -> bool:
        """True if the two segments share a time interval of positive length."""
        return self.start < other.end and other.start < self.end


@dataclass
class TraceRecorder:
    """Collects :class:`TraceEntry` rows and builds Gantt timelines."""

    entries: list[TraceEntry] = field(default_factory=list)
    enabled: bool = True

    # -- recording ---------------------------------------------------------
    def point(self, time: float, category: str, label: str, lane: str = "",
              data: Any = None) -> None:
        """Record an instantaneous event."""
        if self.enabled:
            self.entries.append(
                TraceEntry(time, category, label, lane, "point", data)
            )

    def begin(self, time: float, category: str, label: str, lane: str = "",
              data: Any = None) -> None:
        if self.enabled:
            self.entries.append(
                TraceEntry(time, category, label, lane, "begin", data)
            )

    def end(self, time: float, category: str, label: str, lane: str = "",
            data: Any = None) -> None:
        if self.enabled:
            self.entries.append(
                TraceEntry(time, category, label, lane, "end", data)
            )

    def clear(self) -> None:
        self.entries.clear()

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def filter(self, category: Optional[str] = None,
               lane: Optional[str] = None) -> list[TraceEntry]:
        """Entries matching the given category and/or lane."""
        out = self.entries
        if category is not None:
            out = [e for e in out if e.category == category]
        if lane is not None:
            out = [e for e in out if e.lane == lane]
        return list(out)

    def segments(self, lane: Optional[str] = None) -> list[GanttSegment]:
        """Fold begin/end pairs into closed segments, ordered by start time.

        Pairing is per ``(lane, category, label)`` and FIFO, so re-entrant
        labels (the same version re-running a round during recovery) pair
        correctly.  Unclosed ``begin`` entries are ignored.
        """
        open_stack: dict[tuple[str, str, str], list[float]] = {}
        out: list[GanttSegment] = []
        for e in self.entries:
            if lane is not None and e.lane != lane:
                continue
            key = (e.lane, e.category, e.label)
            if e.phase == "begin":
                open_stack.setdefault(key, []).append(e.time)
            elif e.phase == "end":
                starts = open_stack.get(key)
                if starts:
                    out.append(
                        GanttSegment(e.lane, e.category, e.label,
                                     starts.pop(0), e.time)
                    )
        out.sort(key=lambda s: (s.start, s.lane, s.end))
        return out

    def lanes(self) -> list[str]:
        """All lane names in first-appearance order."""
        seen: dict[str, None] = {}
        for e in self.entries:
            if e.lane and e.lane not in seen:
                seen[e.lane] = None
        return list(seen)

    def total_time(self, category: str, lane: Optional[str] = None) -> float:
        """Sum of segment durations of one category."""
        return sum(
            s.duration for s in self.segments(lane) if s.category == category
        )

    def makespan(self) -> float:
        """Latest segment end (0.0 for an empty trace)."""
        segs = self.segments()
        return max((s.end for s in segs), default=0.0)


def merge_traces(traces: Iterable[TraceRecorder]) -> TraceRecorder:
    """Merge several recorders into one, sorted by time (stable)."""
    merged = TraceRecorder()
    for t in traces:
        merged.entries.extend(t.entries)
    merged.entries.sort(key=lambda e: e.time)
    return merged
