"""repro.sim — a from-scratch discrete-event simulation (DES) engine.

The VDS runtime (:mod:`repro.vds`) and the SMT processor simulator
(:mod:`repro.smt`) are built on this engine.  It follows the classic
event-queue + generator-based-process design (the same programming model as
SimPy, which is not available in this offline environment):

* :class:`Simulator` owns the virtual clock and the event queue.
* :class:`Event` is a one-shot occurrence with callbacks and a value.
* :class:`Process` wraps a Python generator; the generator ``yield``\\ s
  events (e.g. :meth:`Simulator.timeout`) and is resumed when they fire.
* :class:`Resource` / :class:`Store` provide queued mutual exclusion and
  producer/consumer channels.
* :class:`~repro.sim.trace.TraceRecorder` records timestamped events and can
  reconstruct Gantt-style timelines (used to regenerate the paper's Fig. 1).
* :mod:`repro.sim.rng` provides named, reproducible random substreams.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(2.0)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[2.0]
"""

from repro.sim.engine import Simulator, Event, EventStatus, Interrupt
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Resource, PriorityResource, Store
from repro.sim.trace import TraceRecorder, TraceEntry, GanttSegment
from repro.sim.rng import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "EventStatus",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "PriorityResource",
    "Store",
    "TraceRecorder",
    "TraceEntry",
    "GanttSegment",
    "RandomStreams",
]
