"""Queued resources for the DES engine.

:class:`Resource`
    Classic counted resource with FIFO queueing.  The conventional
    processor in :mod:`repro.smt` is a ``Resource(capacity=1)``: only one
    version runs at a time, which is exactly the time-shared execution of
    the paper's Fig. 1(a).

:class:`PriorityResource`
    Like :class:`Resource` but requests carry a priority (lower = sooner).
    Used by the OS-level scheduler to favour the retry thread during
    recovery.

:class:`Store`
    An unbounded FIFO channel of Python objects; producers ``put``,
    consumers ``get``.  Used for checkpoint-write queues.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["Resource", "PriorityResource", "Store"]


class _Request(Event):
    """Event that fires when the resource grant happens."""

    __slots__ = ("resource", "priority")

    def __init__(self, sim: Simulator, resource: "Resource", priority: int = 0):
        super().__init__(sim, f"request({resource.name})")
        self.resource = resource
        self.priority = priority

    # Context-manager sugar: ``with res.request() as req: yield req``
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO waiters.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of simultaneous holders (≥ 1).
    name:
        Label for traces/debugging.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._holders: set[_Request] = set()
        self._waiters: deque[_Request] = deque()

    # -- introspection ----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- protocol -----------------------------------------------------------
    def request(self, priority: int = 0) -> _Request:
        """Return an event that fires once the resource is granted."""
        req = _Request(self.sim, self, priority)
        self._enqueue(req)
        self._grant()
        return req

    def release(self, request: _Request) -> None:
        """Release a granted request (or cancel a still-waiting one)."""
        if request in self._holders:
            self._holders.discard(request)
            self._grant()
        else:
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError(
                    f"release of unknown request on {self.name!r}"
                ) from None

    # -- internals ---------------------------------------------------------
    def _enqueue(self, req: _Request) -> None:
        self._waiters.append(req)

    def _next_waiter(self) -> Optional[_Request]:
        return self._waiters.popleft() if self._waiters else None

    def _grant(self) -> None:
        while len(self._holders) < self.capacity:
            req = self._next_waiter()
            if req is None:
                return
            self._holders.add(req)
            req.succeed(req)


class PriorityResource(Resource):
    """Resource whose waiters are ordered by (priority, arrival)."""

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "priority-resource"):
        super().__init__(sim, capacity, name)
        self._heap: list[tuple[int, int, _Request]] = []
        self._arrival = itertools.count()

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    def _enqueue(self, req: _Request) -> None:
        heapq.heappush(self._heap, (req.priority, next(self._arrival), req))

    def _next_waiter(self) -> Optional[_Request]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def release(self, request: _Request) -> None:
        if request in self._holders:
            self._holders.discard(request)
            self._grant()
        else:
            for i, (_p, _a, r) in enumerate(self._heap):
                if r is request:
                    self._heap.pop(i)
                    heapq.heapify(self._heap)
                    return
            raise SimulationError(
                f"release of unknown request on {self.name!r}"
            )


class Store:
    """Unbounded FIFO object channel with blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    @property
    def size(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        ev = Event(self.sim, f"get({self.name})")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
