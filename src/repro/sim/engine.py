"""Core of the discrete-event engine: virtual clock, event queue, events.

Design notes
------------
The engine is a single-threaded event loop over a binary heap keyed by
``(time, priority, sequence)``.  The sequence number makes the ordering of
simultaneous events deterministic (FIFO within equal time/priority), which is
essential for reproducible VDS traces: the paper's timelines (Fig. 1) contain
many back-to-back zero-length orderings (end-of-round → comparison →
checkpoint) whose relative order must be stable across runs.

Priorities: lower fires first.  :data:`URGENT` is used internally for
process resumption so that a process resumed at time ``T`` runs before
ordinary events scheduled at ``T``.

Observability: when a tracer is active (:mod:`repro.obs.trace`) the
engine emits a ``sim.fire`` point per dispatched event — virtual time,
priority, and event name — which makes the zero-length event orderings
above *visible* instead of implicit.  With tracing disabled the cost is
a single ``is None`` check per event.
"""

from __future__ import annotations

import heapq
import itertools
from enum import Enum
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.trace import active_or_none

#: Priority for ordinary events.
NORMAL = 1
#: Priority for events that must fire before ordinary same-time events.
URGENT = 0

__all__ = ["Simulator", "Event", "EventStatus", "Interrupt", "NORMAL", "URGENT"]


class EventStatus(Enum):
    """Lifecycle of an :class:`Event`."""

    PENDING = "pending"       #: created, not yet scheduled to fire
    SCHEDULED = "scheduled"   #: in the queue with a fire time
    SUCCEEDED = "succeeded"   #: fired with a value
    FAILED = "failed"         #: fired with an exception


class Event:
    """A one-shot occurrence in virtual time.

    Events carry a *value* (on success) or an *exception* (on failure) and a
    list of callbacks invoked when the event fires.  Processes waiting on an
    event are resumed through such a callback.
    """

    __slots__ = ("sim", "name", "_status", "_value", "_callbacks", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._status = EventStatus.PENDING
        self._value: Any = None
        self._callbacks: list[Callable[[Event], None]] = []
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def status(self) -> EventStatus:
        return self._status

    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._status in (EventStatus.SUCCEEDED, EventStatus.FAILED)

    @property
    def ok(self) -> bool:
        return self._status is EventStatus.SUCCEEDED

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed or is pending."""
        if self._status is EventStatus.SUCCEEDED:
            return self._value
        if self._status is EventStatus.FAILED:
            raise self._value
        raise SimulationError(f"value of {self!r} not yet available")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.__class__.__name__
        return f"<Event {label} {self._status.value}>"

    # -- wiring ------------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)``; called immediately if already fired."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._callbacks.remove(fn)
        except ValueError:
            pass

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        self._pre_trigger()
        self._value = value
        self._status = EventStatus.SCHEDULED
        self.sim._schedule(self, delay, NORMAL, ok=True)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._pre_trigger()
        self._value = exc
        self._status = EventStatus.SCHEDULED
        self.sim._schedule(self, delay, NORMAL, ok=False)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def _pre_trigger(self) -> None:
        if self._status is not EventStatus.PENDING:
            raise SimulationError(f"{self!r} already triggered/scheduled")

    def _fire(self, ok: bool) -> None:
        self._status = EventStatus.SUCCEEDED if ok else EventStatus.FAILED
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        if not ok and not self._defused and not callbacks:
            # Nobody is listening to this failure: surface it.
            raise self._value


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name or f"timeout({delay:g})")
        self._value = value
        self._status = EventStatus.SCHEDULED
        sim._schedule(self, delay, NORMAL, ok=True)


class AllOf(Event):
    """Fires when all child events have succeeded; value = list of values.

    Fails as soon as any child fails (children's failures are defused so
    they are reported exactly once, through this event).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered or self._status is EventStatus.SCHEDULED:
            return
        if not ev.ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value = (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered or self._status is EventStatus.SCHEDULED:
            return
        idx = self._children.index(ev)
        if ev.ok:
            self.succeed((idx, ev._value))
        else:
            ev.defuse()
            self.fail(ev._value)


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`repro.sim.process.Process.interrupt`.

    The VDS fault injector uses interrupts to model a fault striking a
    version mid-round (paper §2.1: "a fault is able to stop a version").
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Simulator:
    """Virtual clock + event queue; the hub every model component shares.

    ``tracer`` defaults to the process-wide active tracer (usually the
    disabled one); pass an explicit :class:`~repro.obs.trace.Tracer` to
    trace just this simulator.  Tracing is observation only — it never
    perturbs event ordering or results.
    """

    def __init__(self, start_time: float = 0.0, tracer=None):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, bool, Event]] = []
        self._seq = itertools.count()
        self._active_process = None  # set by Process while running
        #: Active tracer normalised to ``None`` when disabled, so the
        #: hot loop pays one pointer check per event.
        self._tracer = active_or_none(tracer)

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- event factories -------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator, name: str = ""):
        """Spawn a :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int, *,
                  ok: bool) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), ok, event)
        )

    def _schedule_urgent(self, event: Event, *, ok: bool) -> None:
        heapq.heappush(
            self._queue, (self._now, URGENT, next(self._seq), ok, event)
        )

    # -- main loop ---------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, prio, _seq, ok, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        tracer = self._tracer
        if tracer is not None:
            tracer.point("sim.fire", vt=when, priority=prio, ok=ok,
                         event=event.name or type(event).__name__)
        event._fire(ok)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event fires there.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) is in the past (now={self._now!r})"
            )
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires; returns its value."""
        while not event.triggered:
            if not self._queue:
                from repro.errors import DeadlockError

                raise DeadlockError(
                    f"queue drained before {event!r} fired"
                )
            self.step()
        return event.value
