"""Eqs. (9)–(13): the prediction-based roll-forward scheme (paper §4).

If fault detection during roll-forward is given up, the second thread can
execute ``i`` further rounds of *one* version — the one predicted to be
fault-free — while version 3 retries in the first thread.  Truncated at the
checkpoint boundary the roll-forward achieves ``min(i, s−i)`` rounds
(binding for ``i > s/2``).

* Correct prediction (probability ``p``): full progress — Eqs. (9)/(10).
* Wrong prediction: the roll-forward is useless — loss Eq. (11).
* Expected gain: Eq. (12) per round, Eq. (13) averaged, with the closed
  form Ḡ_corr ≈ (1 + 2p·ln 2)/(2α).

The paper's §4.3 thresholds are provided as functions:
``breakeven_p(alpha)`` = (α − ½)/ln 2 (minimum prediction accuracy to gain)
and ``breakeven_alpha_random_guess()`` = (1 + ln 2)/2 ≈ 0.847 (the α up to
which even random guessing, p = ½, gains).
"""

from __future__ import annotations

import math

from repro.core.approximations import mean_over_rounds
from repro.core.conventional import (
    _check_round,
    conventional_correction_time,
    conventional_round_time,
)
from repro.core.gains import _check_p
from repro.core.params import VDSParameters
from repro.core.smt_model import smt_correction_time

__all__ = [
    "prediction_rollforward_rounds",
    "hit_gain",
    "hit_gain_approx",
    "miss_loss",
    "miss_loss_approx",
    "prediction_scheme_gain",
    "prediction_scheme_gain_approx",
    "prediction_scheme_mean_gain",
    "prediction_scheme_mean_gain_approx",
    "breakeven_p",
    "breakeven_alpha_random_guess",
]


def prediction_rollforward_rounds(params: VDSParameters, i: int) -> float:
    """Roll-forward progress on a correct prediction: ``min(i, s−i)``."""
    _check_round(params, i)
    return float(min(i, params.s - i))


# --------------------------------------------------------------------------
# §4.1: correct prediction — Eqs. (9)/(10)
# --------------------------------------------------------------------------

def hit_gain(params: VDSParameters, i: int) -> float:
    """Eqs. (9)/(10), exact: gain when the fault-free version was chosen.

    Expands to the paper's printed exact forms
    ``(3it + (2+i)t′ + 2ic) / (2iαt + 2t′)`` for i ≤ s/2 and
    ``((2s−i)t + (2+s−i)t′ + 2(s−i)c) / (2iαt + 2t′)`` for i > s/2.
    """
    numer = (
        conventional_correction_time(params, i)
        + prediction_rollforward_rounds(params, i)
        * conventional_round_time(params)
    )
    return numer / smt_correction_time(params, i)


def hit_gain_approx(params: VDSParameters, i: int) -> float:
    """Eq. (10) simplification: 3/(2α) for i ≤ s/2, else (2s/i − 1)/(2α)."""
    _check_round(params, i)
    if i <= params.s / 2.0:
        return 3.0 / (2.0 * params.alpha)
    return (2.0 * params.s / i - 1.0) / (2.0 * params.alpha)


# --------------------------------------------------------------------------
# §4.2: wrong prediction — Eq. (11)
# --------------------------------------------------------------------------

def miss_loss(params: VDSParameters, i: int) -> float:
    """Eq. (11), exact: (i·t + 2t′) / (2iαt + 2t′).

    Despite the name "loss", the value is the *gain ratio* (< 1 for
    α > ½): "in the best case (α = ½) the hyperthreaded processor loses
    nothing …, in the worst case it loses a factor of two".
    """
    return conventional_correction_time(params, i) / smt_correction_time(params, i)


def miss_loss_approx(params: VDSParameters, i: int) -> float:
    """Eq. (11) simplification: 1/(2α)."""
    _check_round(params, i)
    return 1.0 / (2.0 * params.alpha)


# --------------------------------------------------------------------------
# §4.3: expected gain — Eqs. (12)/(13)
# --------------------------------------------------------------------------

def prediction_scheme_gain(params: VDSParameters, i: int, p: float) -> float:
    """Eq. (12), exact: G_corr(i) = p·G_hit(i) + (1−p)·L_miss(i)."""
    _check_p(p)
    return p * hit_gain(params, i) + (1.0 - p) * miss_loss(params, i)


def prediction_scheme_gain_approx(params: VDSParameters, i: int,
                                  p: float) -> float:
    """Eq. (12) simplification: (2p+1)/(2α) resp. (2p(s/i−1)+1)/(2α)."""
    _check_round(params, i)
    _check_p(p)
    if i <= params.s / 2.0:
        return (2.0 * p + 1.0) / (2.0 * params.alpha)
    return (2.0 * p * (params.s / i - 1.0) + 1.0) / (2.0 * params.alpha)


def prediction_scheme_mean_gain(params: VDSParameters, p: float) -> float:
    """Eq. (13), exact: mean of Eq. (12) over fault rounds i = 1..s.

    This is the quantity plotted in the paper's Figures 4 and 5
    ("we obtain the figures … by using exact equations (10), (11), (12),
    (13), and (14)").
    """
    return mean_over_rounds(
        prediction_scheme_gain(params, i, p) for i in params.rounds()
    )


def prediction_scheme_mean_gain_approx(params: VDSParameters,
                                       p: float) -> float:
    """Eq. (13) closed form: Ḡ_corr ≈ (1 + 2p·ln 2) / (2α)."""
    _check_p(p)
    return (1.0 + 2.0 * p * math.log(2.0)) / (2.0 * params.alpha)


def breakeven_p(alpha: float) -> float:
    """§4.3: minimal prediction accuracy p for Ḡ_corr ≥ 1: (α − ½)/ln 2.

    "For p ≥ (α − 0.5)/ln 2, the gain is at least one.  In the best case
    α = 0.5, we always gain no matter how bad our guesses are."  Clamped to
    0 from below (α = ½ → any p gains).
    """
    return max(0.0, (alpha - 0.5) / math.log(2.0))


def breakeven_alpha_random_guess() -> float:
    """§4.3: α threshold for p = ½: (1 + ln 2)/2 ≈ 0.8466.

    "For random guesses (p = 0.5) we gain for α ≤ (1 + ln 2)/2 ≈ 0.847."
    """
    return (1.0 + math.log(2.0)) / 2.0
