"""The s → ∞ gain limit ``G_max`` and convergence-in-s analysis.

The paper computes "the maximum gain for these values … by calculating the
limit for s going towards infinity" and notes that "beyond s = 20, Ḡ_corr is
already very close to the limit, independently of the values for α and β.
Therefore, we chose s = 20 in the figures."

Re-derived closed form (DESIGN.md §2): with t = 1 and overheads c, t′,

    G_max = (1 + p·ln 2 · T1,round) / (2α),     T1,round = 2 + 2c + t′,

which under the β-coupling c = t′ = β becomes

    G_max = (1 + (2 + 3β)·p·ln 2) / (2α)
          = (23·p·ln 2 + 10) / (20·α)           at β = 0.1,

decoding the paper's OCR-garbled "23 ln 2 p + 10" and reproducing its
headline number G_max ≈ 1.38 at α = 0.65, β = 0.1, p = 0.5.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.conventional import conventional_round_time
from repro.core.gains import _check_p
from repro.core.params import VDSParameters

__all__ = [
    "prediction_scheme_mean_gain_vectorized",
    "gain_limit",
    "gain_limit_closed_form",
    "convergence_in_s",
    "s_for_convergence",
]


def prediction_scheme_mean_gain_vectorized(params: VDSParameters,
                                           p: float) -> float:
    """Exact Eq. (13) mean, vectorized over rounds (O(s) NumPy, no loop).

    Identical to
    :func:`repro.core.prediction_model.prediction_scheme_mean_gain`; exists
    so convergence studies can evaluate s up to ~10⁷ cheaply (guide idiom:
    vectorize the hot loop).
    """
    _check_p(p)
    i = np.arange(1, params.s + 1, dtype=float)
    progress = np.minimum(i, params.s - i)
    t1_corr = i * params.t + 2.0 * params.t_cmp
    t1_round = conventional_round_time(params)
    tht2_corr = 2.0 * i * params.alpha * params.t + 2.0 * params.cmp_or_switch
    g = (t1_corr + p * progress * t1_round) / tht2_corr
    return float(g.mean())


def gain_limit(params: VDSParameters, p: float) -> float:
    """G_max = lim_{s→∞} Ḡ_corr, evaluated from the exact closed form.

    The overhead constants (2t′ terms) vanish in the limit; only
    ``T1,round/t`` survives in the roll-forward term:

        G_max = (1 + p·ln 2 · T1,round/t) / (2α)
    """
    _check_p(p)
    ratio = conventional_round_time(params) / params.t
    return (1.0 + p * math.log(2.0) * ratio) / (2.0 * params.alpha)


def gain_limit_closed_form(alpha: float, beta: float, p: float) -> float:
    """G_max in the β-coupled form: (1 + (2 + 3β)·p·ln 2) / (2α).

    At β = 0.1 this is (23·p·ln 2 + 10)/(20·α) — the paper's formula.
    """
    _check_p(p)
    return (1.0 + (2.0 + 3.0 * beta) * p * math.log(2.0)) / (2.0 * alpha)


def convergence_in_s(params: VDSParameters, p: float,
                     s_values: Sequence[int]) -> list[tuple[int, float, float]]:
    """Ḡ_corr(s) and its distance to G_max for each s in ``s_values``.

    Returns ``[(s, mean_gain, abs_error_to_limit), ...]``.
    """
    limit = gain_limit(params, p)
    out: list[tuple[int, float, float]] = []
    for s in s_values:
        q = params.with_(s=int(s))
        g = prediction_scheme_mean_gain_vectorized(q, p)
        out.append((int(s), g, abs(g - limit)))
    return out


def s_for_convergence(params: VDSParameters, p: float,
                      rel_tol: float = 0.05, s_max: int = 10_000) -> int:
    """Smallest s whose Ḡ_corr is within ``rel_tol`` (relative) of G_max.

    Validates the paper's "beyond s = 20, Ḡ_corr is already very close to
    the limit" claim (with rel_tol ≈ 5 % this returns s ≤ 20 across the
    figure's (α, β) grid).
    """
    if rel_tol <= 0:
        raise ValueError(f"rel_tol must be > 0, got {rel_tol!r}")
    limit = gain_limit(params, p)
    for s in range(1, s_max + 1):
        q = params.with_(s=s)
        g = prediction_scheme_mean_gain_vectorized(q, p)
        if abs(g - limit) <= rel_tol * limit:
            return s
    raise ValueError(
        f"no s <= {s_max} reaches relative tolerance {rel_tol}"
    )
