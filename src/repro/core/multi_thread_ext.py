"""§5 extension: VDS recovery on processors with more than two hardware threads.

The paper's outlook: "For a multithreaded processor supporting more than two
threads in hardware, we are able to boost the variants with fault detection
during roll-forward: in the probabilistic scheme we could execute versions 1
and 2 for i rounds each in two separate threads (needing 3 threads in
total), in the deterministic scheme we could execute versions 1 and 2,
starting from states P and Q, for i rounds each (needing 5 threads in
total)."

Timing model: with ``n`` simultaneously active hardware threads one
round-slice (one round in every thread) costs ``n·α(n)·t`` where ``α(n)``
comes from an :class:`~repro.core.params.AlphaCurve`.  Each thread executes
``i`` rounds, so the recovery makespan is ``n·α(n)·i·t + 2t′``.  Both boosted
schemes guarantee ``min(i, s−i)`` rounds of detected roll-forward progress
(both versions are advanced from the fault-free state; the deterministic
variant additionally covers both candidate states so it never wastes the
roll-forward even under an additional fault).
"""

from __future__ import annotations

import math

from repro.core.approximations import mean_over_rounds
from repro.core.conventional import (
    _check_round,
    conventional_correction_time,
    conventional_round_time,
)
from repro.core.params import AlphaCurve, VDSParameters
from repro.core.prediction_model import prediction_rollforward_rounds

__all__ = [
    "n_thread_correction_time",
    "boosted_probabilistic_gain",
    "boosted_probabilistic_mean_gain",
    "boosted_deterministic_gain",
    "boosted_deterministic_mean_gain",
    "boosted_mean_gain_approx",
    "best_scheme",
]

#: Hardware threads needed by the boosted probabilistic scheme (§5).
PROB_BOOST_THREADS = 3
#: Hardware threads needed by the boosted deterministic scheme (§5).
DET_BOOST_THREADS = 5


def n_thread_correction_time(params: VDSParameters, i: int, n: int,
                             curve: AlphaCurve) -> float:
    """Recovery makespan with ``n`` threads each executing ``i`` rounds."""
    _check_round(params, i)
    return n * curve(n) * i * params.t + 2.0 * params.cmp_or_switch


def _boosted_gain(params: VDSParameters, i: int, n: int,
                  curve: AlphaCurve) -> float:
    numer = (
        conventional_correction_time(params, i)
        + prediction_rollforward_rounds(params, i)
        * conventional_round_time(params)
    )
    return numer / n_thread_correction_time(params, i, n, curve)


def boosted_probabilistic_gain(params: VDSParameters, i: int,
                               curve: AlphaCurve, p: float = 0.5) -> float:
    """Gain of the 3-thread boosted probabilistic scheme, fault at round i.

    Versions 1 and 2 each run ``i`` rounds (instead of ``i/2`` each in one
    thread) from the chosen candidate state while V3 retries — the §5
    boost lengthens the roll-forward to ``min(i, s−i)`` and keeps fault
    detection, but the progress still materialises only if the chosen
    state was the fault-free one (probability ``p``).
    """
    from repro.core.gains import _check_p

    _check_p(p)
    numer = (
        conventional_correction_time(params, i)
        + p * prediction_rollforward_rounds(params, i)
        * conventional_round_time(params)
    )
    return numer / n_thread_correction_time(params, i, PROB_BOOST_THREADS,
                                            curve)


def boosted_probabilistic_mean_gain(params: VDSParameters, curve: AlphaCurve,
                                    p: float = 0.5) -> float:
    """Mean over fault rounds of :func:`boosted_probabilistic_gain`."""
    return mean_over_rounds(
        boosted_probabilistic_gain(params, i, curve, p)
        for i in params.rounds()
    )


def boosted_deterministic_gain(params: VDSParameters, i: int,
                               curve: AlphaCurve) -> float:
    """Gain of the 5-thread boosted deterministic scheme, fault at round i.

    Versions 1/2 advance from *both* candidate states P and Q (4 threads)
    while V3 retries (1 thread): guaranteed progress with detection and no
    dependence on which state was faulty.
    """
    return _boosted_gain(params, i, DET_BOOST_THREADS, curve)


def boosted_deterministic_mean_gain(params: VDSParameters,
                                    curve: AlphaCurve) -> float:
    """Mean over fault rounds of :func:`boosted_deterministic_gain`."""
    return mean_over_rounds(
        boosted_deterministic_gain(params, i, curve) for i in params.rounds()
    )


def boosted_mean_gain_approx(alpha_n: float, n: int) -> float:
    """Closed-form approximation (c, t′ ≪ t, s → ∞): (1 + 2·ln 2)/(n·α(n)).

    Derivation mirrors Eq. (13): numerator mean → 1 + 2·ln 2 (progress
    min(i, s−i) with certainty), denominator n·α(n)·i·t.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (1.0 + 2.0 * math.log(2.0)) / (n * alpha_n)


def best_scheme(params: VDSParameters, p: float,
                curve: AlphaCurve) -> tuple[str, float]:
    """Which recovery scheme has the highest mean gain at these parameters.

    Compares the paper's 2-thread schemes against the §5 boosted variants.
    Returns ``(scheme_name, mean_gain)``.
    """
    from repro.core.gains import (
        deterministic_mean_gain,
        probabilistic_mean_gain,
    )
    from repro.core.prediction_model import prediction_scheme_mean_gain

    candidates = {
        "deterministic": deterministic_mean_gain(params),
        "probabilistic": probabilistic_mean_gain(params, p),
        "prediction": prediction_scheme_mean_gain(params, p),
        "boosted-probabilistic": boosted_probabilistic_mean_gain(params, curve, p),
        "boosted-deterministic": boosted_deterministic_mean_gain(params, curve),
    }
    name = max(candidates, key=candidates.__getitem__)
    return name, candidates[name]
