"""Harmonic-sum helpers behind the paper's ``Σ 1/i ≈ ln(m/n)`` steps.

The paper's closed-form mean gains (Eqs. (7), (8), (13)) replace partial
harmonic sums by logarithms:

    Σ_{i=n+1}^{m} 1/i ≈ ln(m/n)

This module provides the exact partial sums, the log approximation, and a
rigorous error bound, so tests can verify that the approximation step is
sound for the paper's s = 20 and converges as s grows.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "harmonic",
    "harmonic_range",
    "harmonic_range_log_approx",
    "harmonic_range_error_bound",
    "mean_over_rounds",
]

# Euler–Mascheroni constant, used by the asymptotic expansion of H(n).
_EULER_GAMMA = 0.5772156649015328606


def harmonic(n: int) -> float:
    """The n-th harmonic number H(n) = Σ_{i=1}^{n} 1/i (H(0) = 0).

    Exact summation for small n; asymptotic expansion (error < 1/(120 n⁴))
    for large n so the function stays O(1) for the s → ∞ limit studies.
    """
    if n < 0:
        raise ValueError(f"harmonic() needs n >= 0, got {n}")
    if n == 0:
        return 0.0
    if n <= 10_000:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    # H(n) = ln n + γ + 1/(2n) − 1/(12n²) + 1/(120n⁴) − …
    return (
        math.log(n)
        + _EULER_GAMMA
        + 1.0 / (2.0 * n)
        - 1.0 / (12.0 * n * n)
        + 1.0 / (120.0 * n**4)
    )


def harmonic_range(n: int, m: int) -> float:
    """Exact Σ_{i=n+1}^{m} 1/i (0 if the range is empty)."""
    if n < 0 or m < 0:
        raise ValueError("harmonic_range needs n, m >= 0")
    if m <= n:
        return 0.0
    return harmonic(m) - harmonic(n)


def harmonic_range_log_approx(n: int, m: int) -> float:
    """The paper's approximation Σ_{i=n+1}^{m} 1/i ≈ ln(m/n)."""
    if n <= 0:
        raise ValueError("log approximation needs n >= 1")
    if m <= n:
        return 0.0
    return math.log(m / n)


def harmonic_range_error_bound(n: int, m: int) -> float:
    """A bound on |Σ_{i=n+1}^{m} 1/i − ln(m/n)|.

    From the integral sandwich ``ln((m+1)/(n+1)) ≤ Σ ≤ ln(m/n)`` the error
    is at most ``ln(m/n) − ln((m+1)/(n+1)) ≤ 1/n − 1/m``.
    """
    if n <= 0:
        raise ValueError("error bound needs n >= 1")
    if m <= n:
        return 0.0
    return 1.0 / n - 1.0 / m


def mean_over_rounds(values: Iterable[float]) -> float:
    """Mean of per-round quantities over i = 1..s.

    The paper assumes "a fault to happen with equal probability in any
    round i, where 1 ≤ i ≤ s"; all Ḡ quantities are plain means of the
    per-round gains.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean_over_rounds needs at least one value")
    return float(arr.mean())
