"""Eqs. (1)–(2): VDS timing on a conventional (single-threaded) processor.

Execution model (paper §3.1, Fig. 1(a)): versions 1 and 2 proceed
alternately in rounds — V1 runs a round (t), context switch (c), V2 runs the
same round (t), context switch (c), states compared (t′):

    T1,round = 2·(t + c) + t′                                  (1)

On a mismatch at round ``i`` after the last checkpoint (1 ≤ i ≤ s), version
3 is started from that checkpoint and executed for ``i`` rounds, then a
majority vote over the three states identifies the faulty version
(stop-and-retry):

    T1,corr = i·t + 2·t′                                       (2)

(the two comparisons of the vote: V3-vs-V1 and V3-vs-V2).
"""

from __future__ import annotations

from repro.core.params import VDSParameters
from repro.errors import ConfigurationError

__all__ = [
    "conventional_round_time",
    "conventional_correction_time",
    "conventional_interval_time",
    "checkpoint_overhead_fraction",
]


def conventional_round_time(params: VDSParameters) -> float:
    """Eq. (1): duration of one complete VDS round, conventional CPU."""
    return 2.0 * (params.t + params.c) + params.t_cmp


def conventional_correction_time(params: VDSParameters, i: int) -> float:
    """Eq. (2): stop-and-retry correction time for a fault at round ``i``.

    Parameters
    ----------
    i:
        Round index after the last checkpoint at which the mismatch was
        detected, 1 ≤ i ≤ s.
    """
    _check_round(params, i)
    return i * params.t + 2.0 * params.t_cmp


def conventional_interval_time(params: VDSParameters,
                               checkpoint_write: float = 0.0) -> float:
    """Fault-free time of one full checkpoint interval (s rounds + write).

    Not an explicitly numbered equation; used by the VDS simulator and the
    checkpoint-placement analysis (ref [14] context).
    """
    if checkpoint_write < 0:
        raise ConfigurationError(
            f"checkpoint_write must be >= 0, got {checkpoint_write!r}"
        )
    return params.s * conventional_round_time(params) + checkpoint_write


def checkpoint_overhead_fraction(params: VDSParameters,
                                 checkpoint_write: float) -> float:
    """Fraction of interval time spent writing the checkpoint."""
    total = conventional_interval_time(params, checkpoint_write)
    return checkpoint_write / total


def _check_round(params: VDSParameters, i: int) -> None:
    if not isinstance(i, int) or isinstance(i, bool):
        raise ConfigurationError(f"round index must be an int, got {i!r}")
    if not (1 <= i <= params.s):
        raise ConfigurationError(
            f"round index must lie in [1, s={params.s}], got {i}"
        )
