"""Eqs. (3) and (5): VDS timing on a 2-way SMT ("hyperthreaded") processor.

Execution model (paper §3.2, Fig. 1(b)): the two versions run in two
hardware threads *in parallel*; no context switch is needed and the
processor's improved utilisation compresses the two rounds into ``2·α·t``:

    THT2,round = 2·α·t + t′                                    (3)

with ½ < α < 1 (α = 0.5: the threads fully overlap; α = 1: no faster than
sequential, minus the context switches).

During recovery the retry of version 3 (``i`` rounds) runs in the first
thread while the second thread rolls forward, taking

    THT2,corr = 2·i·α·t + 2·t′                                 (5)

"assuming that the roll-forward in the second thread does not take longer
than the retry in the first thread".  Footnote 3 remarks that exactly one
would write ``max(t′, c)`` for the trailing overhead; this is available via
``VDSParameters(use_footnote3=True)`` and coincides with the default under
the β-coupling c = t′.
"""

from __future__ import annotations

from repro.core.conventional import _check_round
from repro.core.params import VDSParameters

__all__ = ["smt_round_time", "smt_correction_time", "smt_interval_time",
           "smt_n_thread_round_time"]


def smt_round_time(params: VDSParameters) -> float:
    """Eq. (3): duration of one complete VDS round on the 2-way SMT CPU."""
    return 2.0 * params.alpha * params.t + params.t_cmp


def smt_correction_time(params: VDSParameters, i: int) -> float:
    """Eq. (5): recovery time (retry ∥ roll-forward) for a fault at round i."""
    _check_round(params, i)
    return 2.0 * i * params.alpha * params.t + 2.0 * params.cmp_or_switch


def smt_interval_time(params: VDSParameters,
                      checkpoint_write: float = 0.0) -> float:
    """Fault-free time of one checkpoint interval on the SMT processor."""
    return params.s * smt_round_time(params) + checkpoint_write


def smt_n_thread_round_time(params: VDSParameters, n: int,
                            alpha_n: float) -> float:
    """§5 extension: one VDS round with ``n`` versions in ``n`` threads.

    ``n`` rounds of work complete in ``n·α(n)·t``; the n-way state
    comparison needs ``n−1`` pairwise comparisons against a pivot.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return n * alpha_n * params.t + (n - 1) * params.t_cmp
