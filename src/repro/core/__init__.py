"""repro.core — the paper's analytical performance model.

This package is the primary contribution of the reproduced paper: closed-form
round/correction times of a virtual duplex system on a conventional and on a
2-way SMT ("hyperthreaded") processor, and the *gain* of the SMT variant for
normal processing and for each recovery scheme.

Module map (equation numbers refer to the paper; see DESIGN.md §2 for the
re-derived forms):

================== ====================================================
Module              Contents
================== ====================================================
``params``          :class:`VDSParameters` (t, c, t′, α, β, s) + validation
``conventional``    Eqs. (1), (2): ``T1_round``, ``T1_corr``
``smt_model``       Eqs. (3), (5): ``THT2_round``, ``THT2_corr``
``gains``           Eqs. (4), (6), (7), (8): round gain, deterministic and
                    probabilistic roll-forward gains (exact + approximate)
``prediction_model`` Eqs. (9)–(13): prediction-based scheme
``limits``          ``G_max`` (s → ∞) and convergence-in-s analysis
``surfaces``        Fig. 4 / Fig. 5 gain surfaces over (α, β) grids
``multi_thread_ext`` §5 extension to ≥ 3 hardware threads
``frequency``       §5 clock-frequency/power trade-off
``approximations``  harmonic-sum helpers behind the paper's ln() steps
================== ====================================================
"""

from repro.core.params import VDSParameters, AlphaCurve
from repro.core.conventional import (
    conventional_round_time,
    conventional_correction_time,
)
from repro.core.smt_model import smt_round_time, smt_correction_time
from repro.core.gains import (
    round_gain,
    round_gain_approx,
    deterministic_gain,
    deterministic_gain_approx,
    deterministic_mean_gain,
    deterministic_mean_gain_approx,
    probabilistic_gain,
    probabilistic_gain_approx,
    probabilistic_mean_gain,
    probabilistic_mean_gain_approx,
    deterministic_breakeven_alpha,
)
from repro.core.prediction_model import (
    hit_gain,
    hit_gain_approx,
    miss_loss,
    miss_loss_approx,
    prediction_scheme_gain,
    prediction_scheme_gain_approx,
    prediction_scheme_mean_gain,
    prediction_scheme_mean_gain_approx,
    breakeven_p,
    breakeven_alpha_random_guess,
)
from repro.core.limits import (
    gain_limit,
    gain_limit_closed_form,
    convergence_in_s,
    s_for_convergence,
)
from repro.core.surfaces import GainSurface, gain_surface, figure4_surface, figure5_surface

__all__ = [
    "VDSParameters",
    "AlphaCurve",
    "conventional_round_time",
    "conventional_correction_time",
    "smt_round_time",
    "smt_correction_time",
    "round_gain",
    "round_gain_approx",
    "deterministic_gain",
    "deterministic_gain_approx",
    "deterministic_mean_gain",
    "deterministic_mean_gain_approx",
    "deterministic_breakeven_alpha",
    "probabilistic_gain",
    "probabilistic_gain_approx",
    "probabilistic_mean_gain",
    "probabilistic_mean_gain_approx",
    "hit_gain",
    "hit_gain_approx",
    "miss_loss",
    "miss_loss_approx",
    "prediction_scheme_gain",
    "prediction_scheme_gain_approx",
    "prediction_scheme_mean_gain",
    "prediction_scheme_mean_gain_approx",
    "breakeven_p",
    "breakeven_alpha_random_guess",
    "gain_limit",
    "gain_limit_closed_form",
    "convergence_in_s",
    "s_for_convergence",
    "GainSurface",
    "gain_surface",
    "figure4_surface",
    "figure5_surface",
]
