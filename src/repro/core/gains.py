"""Eqs. (4), (6)–(8): gain of the SMT VDS over the conventional VDS.

Gain is defined as the ratio of the time the conventional processor needs
to the time the SMT processor needs for the same logical progress:

* **normal processing** (Eq. (4)) — one complete VDS round;
* **deterministic roll-forward** (Eqs. (6)/(7), Fig. 3) — during the
  version-3 retry, the second thread advances each version ``i/4`` rounds
  from each of the two candidate states (4 segments, ``i`` rounds of work,
  ``min(i/4, s−i)`` rounds of *guaranteed* progress, with fault detection);
* **probabilistic roll-forward** (Eq. (8), Fig. 2) — the second thread
  picks one candidate state (correct with probability ``p``) and advances
  both versions ``i/2`` rounds from it, detecting roll-forward faults by a
  final comparison; progress ``min(i/2, s−i)`` with probability ``p``.

Roll-forward never continues beyond round ``s`` ("the roll-forward may have
to be shortened due to the checkpointing interval"), hence the ``min(·, s−i)``
truncations.  Per the paper's footnote 2 fractional round counts are kept
(``i/4`` and ``i/2`` need not be integers).

All ``*_approx`` functions implement the paper's printed simplifications
(c, t′ ≪ t); all exact functions evaluate the full expressions and are the
ones used for the figures, as the paper itself does ("we obtain the figures
not by using the approximated values … but by using exact equations").
"""

from __future__ import annotations

import math

from repro.core.approximations import mean_over_rounds
from repro.core.conventional import (
    _check_round,
    conventional_correction_time,
    conventional_round_time,
)
from repro.core.params import VDSParameters
from repro.core.smt_model import smt_correction_time, smt_round_time
from repro.errors import ConfigurationError

__all__ = [
    "round_gain",
    "round_gain_approx",
    "deterministic_rollforward_rounds",
    "deterministic_gain",
    "deterministic_gain_approx",
    "deterministic_mean_gain",
    "deterministic_mean_gain_approx",
    "deterministic_breakeven_alpha",
    "probabilistic_rollforward_rounds",
    "probabilistic_gain",
    "probabilistic_gain_approx",
    "probabilistic_mean_gain",
    "probabilistic_mean_gain_approx",
]


# --------------------------------------------------------------------------
# Eq. (4): normal processing
# --------------------------------------------------------------------------

def round_gain(params: VDSParameters) -> float:
    """Eq. (4), exact: G_round = T1,round / THT2,round."""
    return conventional_round_time(params) / smt_round_time(params)


def round_gain_approx(params: VDSParameters) -> float:
    """Eq. (4), paper's simplification for c, t′ ≪ t: G_round ≈ 1/α."""
    return 1.0 / params.alpha


# --------------------------------------------------------------------------
# Eqs. (6)/(7): deterministic roll-forward
# --------------------------------------------------------------------------

def deterministic_rollforward_rounds(params: VDSParameters, i: int) -> float:
    """Guaranteed roll-forward progress of the deterministic scheme.

    ``min(i/4, s−i)`` rounds: each version advances ``i/4`` rounds from the
    fault-free candidate state (the other half of the work, from the faulty
    state, is discarded after the vote), truncated at the checkpoint
    boundary (binding for ``i > 4s/5``).
    """
    _check_round(params, i)
    return min(i / 4.0, float(params.s - i))


def deterministic_gain(params: VDSParameters, i: int) -> float:
    """Eq. (6), exact, fault at round ``i``."""
    progress = deterministic_rollforward_rounds(params, i)
    numer = (
        conventional_correction_time(params, i)
        + progress * conventional_round_time(params)
    )
    return numer / smt_correction_time(params, i)


def deterministic_gain_approx(params: VDSParameters, i: int) -> float:
    """Eq. (6), paper's printed piecewise simplification."""
    _check_round(params, i)
    if i <= 4.0 * params.s / 5.0:
        return 3.0 / (4.0 * params.alpha)
    return (2.0 * params.s - i) / (2.0 * i * params.alpha)


def deterministic_mean_gain(params: VDSParameters) -> float:
    """Eq. (7), exact: mean of Eq. (6) over fault rounds i = 1..s."""
    return mean_over_rounds(
        deterministic_gain(params, i) for i in params.rounds()
    )


def deterministic_mean_gain_approx(params: VDSParameters) -> float:
    """Eq. (7), closed form: Ḡ_det ≈ (1 + 2·ln(5/4)) / (2α) ≈ 0.7231/α."""
    return (1.0 + 2.0 * math.log(5.0 / 4.0)) / (2.0 * params.alpha)


def deterministic_breakeven_alpha() -> float:
    """The α below which the deterministic scheme gains (Ḡ_det > 1).

    The paper: "the gain of the deterministic scheme is larger than one for
    α < 0.723"; exactly α* = ½ + ln(5/4).
    """
    return 0.5 + math.log(5.0 / 4.0)


# --------------------------------------------------------------------------
# Eq. (8): probabilistic roll-forward
# --------------------------------------------------------------------------

def probabilistic_rollforward_rounds(params: VDSParameters, i: int) -> float:
    """Potential progress of the probabilistic scheme: ``min(i/2, s−i)``.

    Realised only if the fault-free candidate state was chosen
    (probability ``p``); binding truncation for ``i > 2s/3``.
    """
    _check_round(params, i)
    return min(i / 2.0, float(params.s - i))


def probabilistic_gain(params: VDSParameters, i: int, p: float) -> float:
    """Eq. (8) integrand, exact: expected gain for a fault at round ``i``."""
    _check_p(p)
    progress = p * probabilistic_rollforward_rounds(params, i)
    numer = (
        conventional_correction_time(params, i)
        + progress * conventional_round_time(params)
    )
    return numer / smt_correction_time(params, i)


def probabilistic_gain_approx(params: VDSParameters, i: int, p: float) -> float:
    """Per-round simplification of the probabilistic scheme (c, t′ ≪ t)."""
    _check_round(params, i)
    _check_p(p)
    if i <= 2.0 * params.s / 3.0:
        return (1.0 + p) / (2.0 * params.alpha)
    return (1.0 + 2.0 * p * (params.s / i - 1.0)) / (2.0 * params.alpha)


def probabilistic_mean_gain(params: VDSParameters, p: float) -> float:
    """Eq. (8), exact mean over fault rounds."""
    return mean_over_rounds(
        probabilistic_gain(params, i, p) for i in params.rounds()
    )


def probabilistic_mean_gain_approx(params: VDSParameters, p: float) -> float:
    """Eq. (8) closed form: Ḡ_prob ≈ (1 + 2p·ln(3/2)) / (2α).

    For p = 0.5 (random choice) this matches Ḡ_det "approximately", as the
    paper notes: (1 + ln(3/2))/2 ≈ 0.703 vs (1 + 2·ln(5/4))/2 ≈ 0.723.
    """
    _check_p(p)
    return (1.0 + 2.0 * p * math.log(1.5)) / (2.0 * params.alpha)


def _check_p(p: float) -> None:
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError(f"probability p must lie in [0, 1], got {p!r}")
