"""Model parameters of the paper's VDS performance model.

The paper works with five quantities (§3):

``t``
    processing time of one *round* of one version ("the processing of a
    round for each version always takes time t"),
``t′`` (``t_cmp`` here)
    time to compare the states of two versions at the end of a round,
``c``
    context-switch time on the conventional processor,
``s``
    checkpoint interval in rounds ("after every s rounds, the state is
    saved in the form of a checkpoint"),
``α``
    SMT efficiency: two hardware threads together finish one round of each
    version in ``2·α·t`` (α = ½ → perfect overlap, α = 1 → no overlap;
    Pentium 4 HT: α ≈ 0.65, paper ref [13]).

To cut the parameter space the paper sets ``c = t′ = β·t`` with β ∈ [0, 1]
(Eq. (14)); β ≈ 0.1 is called realistic, β = 0 is the no-overhead limit.
:class:`VDSParameters` supports both the β-coupled form and fully explicit
``c``/``t_cmp`` values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["VDSParameters", "AlphaCurve", "PENTIUM4_ALPHA", "REALISTIC_BETA"]

#: SMT efficiency reported for the Pentium 4 with Hyperthreading (ref [13]:
#: "runtime reduction up to 35 %" → α = 0.65).
PENTIUM4_ALPHA = 0.65

#: The paper's "since the time for a context switch is much smaller than the
#: time for a round, we may set β = 0.1".
REALISTIC_BETA = 0.1


@dataclass(frozen=True)
class VDSParameters:
    """Immutable parameter set of the analytical model.

    Parameters
    ----------
    alpha:
        SMT efficiency α ∈ [0.5, 1].
    beta:
        Overhead ratio β = c/t = t′/t ∈ [0, 1] (Eq. (14)).  Mutually
        exclusive with explicit ``c``/``t_cmp``.
    s:
        Checkpoint interval in rounds, ≥ 1.
    t:
        Round time (time unit; default 1.0).
    c, t_cmp:
        Explicit context-switch and comparison times.  If either is given,
        both must be, and ``beta`` must be left at ``None``.
    use_footnote3:
        Paper footnote 3: "to be exact, we would have to write max(t′, c)
        instead of t′" in the SMT correction time.  Off by default (the
        paper's figures use the plain t′ form; under Eq. (14) the two
        coincide anyway since c = t′).

    Examples
    --------
    >>> p = VDSParameters(alpha=0.65, beta=0.1, s=20)
    >>> p.c == p.t_cmp == 0.1
    True
    >>> q = VDSParameters(alpha=0.6, s=10, c=0.02, t_cmp=0.05)
    >>> q.beta is None
    True
    """

    alpha: float = PENTIUM4_ALPHA
    beta: Optional[float] = None
    s: int = 20
    t: float = 1.0
    c: Optional[float] = None
    t_cmp: Optional[float] = None
    use_footnote3: bool = False

    def __post_init__(self) -> None:
        if not (0.5 <= self.alpha <= 1.0):
            raise ConfigurationError(
                f"alpha must lie in [0.5, 1], got {self.alpha!r}"
            )
        if not isinstance(self.s, int) or isinstance(self.s, bool):
            raise ConfigurationError(f"s must be an int, got {self.s!r}")
        if self.s < 1:
            raise ConfigurationError(f"s must be >= 1, got {self.s!r}")
        if not (self.t > 0) or not math.isfinite(self.t):
            raise ConfigurationError(f"t must be finite and > 0, got {self.t!r}")

        explicit = self.c is not None or self.t_cmp is not None
        if explicit:
            if self.beta is not None:
                raise ConfigurationError(
                    "give either beta or explicit c/t_cmp, not both"
                )
            if self.c is None or self.t_cmp is None:
                raise ConfigurationError(
                    "explicit overheads need both c and t_cmp"
                )
            if self.c < 0 or self.t_cmp < 0:
                raise ConfigurationError("c and t_cmp must be >= 0")
        else:
            beta = REALISTIC_BETA if self.beta is None else self.beta
            if not (0.0 <= beta <= 1.0):
                raise ConfigurationError(
                    f"beta must lie in [0, 1], got {beta!r}"
                )
            # frozen dataclass: assign via object.__setattr__
            object.__setattr__(self, "beta", beta)
            object.__setattr__(self, "c", beta * self.t)
            object.__setattr__(self, "t_cmp", beta * self.t)

    # -- derived -------------------------------------------------------------
    @property
    def overhead_coupled(self) -> bool:
        """True when the β-coupled form (Eq. (14)) is in effect."""
        return self.beta is not None

    @property
    def cmp_or_switch(self) -> float:
        """``max(t′, c)`` if footnote 3 is enabled, else ``t′``."""
        return max(self.t_cmp, self.c) if self.use_footnote3 else self.t_cmp

    def rounds(self) -> range:
        """The fault-round domain 1..s (inclusive)."""
        return range(1, self.s + 1)

    def with_(self, **changes) -> "VDSParameters":
        """A modified copy that re-validates.

        The β-coupled and explicit representations are kept consistent:
        changing ``c``/``t_cmp`` switches to explicit mode, anything else
        preserves the instance's current mode.
        """
        explicit_change = ("c" in changes or "t_cmp" in changes) and (
            changes.get("c") is not None or changes.get("t_cmp") is not None
        )
        base = dict(
            alpha=self.alpha, s=self.s, t=self.t,
            use_footnote3=self.use_footnote3,
        )
        if explicit_change or not self.overhead_coupled:
            base.update(c=self.c, t_cmp=self.t_cmp, beta=None)
        else:
            base.update(beta=self.beta, c=None, t_cmp=None)
        base.update(changes)
        return VDSParameters(**base)


@dataclass(frozen=True)
class AlphaCurve:
    """SMT efficiency as a function of the number of active hardware threads.

    The paper's model only needs α for two threads; its §5 outlook
    ("a multithreaded processor supporting more than two threads") needs an
    α(n).  We model saturating resource contention:

        α(n) = 1/n + (α₂ − ½) · 2·(n − 1)/n

    which satisfies α(1) = 1 (a single thread runs at full speed — paper
    footnote 1), α(2) = α₂, and saturates so aggregate speedup
    n/(n·α(n)) → 1/(2α₂ − 1) — a finite issue-bandwidth ceiling.  A custom
    table can override the curve (e.g. one measured from the
    :mod:`repro.smt` simulator).
    """

    alpha2: float = PENTIUM4_ALPHA
    table: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.5 <= self.alpha2 <= 1.0):
            raise ConfigurationError(
                f"alpha2 must lie in [0.5, 1], got {self.alpha2!r}"
            )
        for n, a in self.table.items():
            if n < 1:
                raise ConfigurationError(f"thread count must be >= 1, got {n}")
            if not (1.0 / n <= a <= 1.0):
                raise ConfigurationError(
                    f"alpha({n}) must lie in [1/{n}, 1], got {a!r}"
                )

    def __call__(self, n: int) -> float:
        """α for ``n`` simultaneously active hardware threads."""
        if n < 1:
            raise ConfigurationError(f"thread count must be >= 1, got {n}")
        if n in self.table:
            return self.table[n]
        if n == 1:
            return 1.0
        return 1.0 / n + (self.alpha2 - 0.5) * 2.0 * (n - 1) / n

    def aggregate_speedup(self, n: int) -> float:
        """Throughput of n threads relative to one thread: 1/α(n)... / n·... .

        Precisely: n rounds of work take ``n·α(n)·t`` with n threads versus
        ``n·t`` sequentially, so the speedup is ``1/α(n)``.
        """
        return 1.0 / self(n)
