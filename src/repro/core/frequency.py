"""§5: trading the SMT gain for clock frequency, power, and heat.

The paper: "Alternatively, if we are already satisfied with the VDS
performance, we could employ a multithreaded processor with a clock
frequency reduced by a factor of at least 1/α, assuming that performance
scales linear with clock frequency.  This would account for lower cost,
lower power consumption and lower heat dissipation."

We model this with a standard DVFS abstraction: dynamic power
``P ∝ V²·f`` and, when voltage tracks frequency (``V ∝ f^k`` with voltage
exponent ``k``), ``P_dyn ∝ f^(1+2k)``; a static (leakage) fraction does not
scale with f.  The die-area overhead of SMT is the paper's 5 % (ref [13]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gains import round_gain
from repro.core.params import VDSParameters
from repro.errors import ConfigurationError

__all__ = ["PowerModel", "equal_performance_frequency_scale",
           "smt_die_area_factor", "duplex_die_area_factor"]

#: Ref [13]: "the die area increases by only 5 %" for hyperthreading.
SMT_AREA_OVERHEAD = 0.05


def equal_performance_frequency_scale(params: VDSParameters,
                                      exact: bool = True) -> float:
    """Frequency multiplier at which the SMT VDS matches the conventional one.

    With linear performance-in-frequency scaling, equal *normal-phase* VDS
    throughput allows ``f_SMT = f_conv / G_round``.  The paper states the
    approximate form "reduced by a factor of at least 1/α", i.e. a
    multiplier of α; ``exact=False`` returns exactly that.
    """
    if not exact:
        return params.alpha
    return 1.0 / round_gain(params)


@dataclass(frozen=True)
class PowerModel:
    """Dynamic + static power under frequency/voltage scaling.

    Parameters
    ----------
    voltage_exponent:
        k in ``V ∝ f^k``.  k = 1 is classic combined DVFS (P_dyn ∝ f³);
        k = 0 is frequency-only scaling (P_dyn ∝ f).
    static_fraction:
        Fraction of nominal power that is leakage (does not scale with f).
    """

    voltage_exponent: float = 1.0
    static_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.voltage_exponent < 0:
            raise ConfigurationError("voltage_exponent must be >= 0")
        if not (0.0 <= self.static_fraction < 1.0):
            raise ConfigurationError("static_fraction must lie in [0, 1)")

    def relative_power(self, freq_scale: float) -> float:
        """Power at ``f' = freq_scale · f`` relative to nominal power."""
        if freq_scale <= 0:
            raise ConfigurationError(
                f"freq_scale must be > 0, got {freq_scale!r}"
            )
        dyn = (1.0 - self.static_fraction) * freq_scale ** (
            1.0 + 2.0 * self.voltage_exponent
        )
        return dyn + self.static_fraction

    def relative_energy_per_round(self, params: VDSParameters,
                                  freq_scale: float) -> float:
        """Energy per VDS round of the down-clocked SMT VDS vs conventional.

        Time per round stretches by 1/freq_scale on the SMT side and the
        SMT round is 1/G_round of the conventional one at equal clocks, so

            E_rel = relative_power(freq_scale) · (1 / (freq_scale · G_round)).
        """
        g = round_gain(params)
        return self.relative_power(freq_scale) / (freq_scale * g)

    def equal_performance_power(self, params: VDSParameters) -> float:
        """Relative power of the SMT VDS down-clocked to equal performance.

        The headline §5 number: at α = 0.65, β = 0.1, k = 1, leakage 10 %,
        the SMT VDS delivers conventional-VDS performance at roughly a
        third of the dynamic power.
        """
        scale = equal_performance_frequency_scale(params)
        return self.relative_power(scale)


def smt_die_area_factor() -> float:
    """Die area of the SMT processor relative to the conventional one."""
    return 1.0 + SMT_AREA_OVERHEAD


def duplex_die_area_factor() -> float:
    """Die area of a true duplex system (two processors) — the cost
    alternative the paper's intro positions VDS against."""
    return 2.0
