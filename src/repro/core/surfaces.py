"""Fig. 4 / Fig. 5: the gain surface Ḡ_corr(α, β).

The paper plots the expected prediction-scheme gain over the (α, β) plane
for s = 20 at p = 0.5 (Fig. 4, "worst case, as we do not expect any strategy
to be worse than a random choice") and p = 1.0 (Fig. 5, best case), using
the exact equations (10)–(14).

:func:`gain_surface` evaluates the surface fully vectorized (one broadcasted
NumPy expression over the α × β × i cube — guide idiom: no Python loops in
the hot path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.gains import _check_p
from repro.errors import ConfigurationError

__all__ = ["GainSurface", "gain_surface", "figure4_surface", "figure5_surface",
           "DEFAULT_ALPHAS", "DEFAULT_BETAS"]

#: Default α axis: the paper's valid domain [0.5, 1].
DEFAULT_ALPHAS = tuple(np.round(np.linspace(0.5, 1.0, 11), 6))
#: Default β axis: "we assume 0 ≤ β ≤ 1".
DEFAULT_BETAS = tuple(np.round(np.linspace(0.0, 1.0, 11), 6))


@dataclass(frozen=True)
class GainSurface:
    """An evaluated Ḡ_corr(α, β) grid.

    ``values[a, b]`` is the gain at ``alphas[a]``, ``betas[b]``.
    """

    alphas: np.ndarray
    betas: np.ndarray
    values: np.ndarray
    p: float
    s: int

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.alphas), len(self.betas)):
            raise ConfigurationError(
                f"values shape {self.values.shape} does not match axes "
                f"({len(self.alphas)}, {len(self.betas)})"
            )

    def value_at(self, alpha: float, beta: float) -> float:
        """Exact gain at an arbitrary (α, β) — recomputed, not interpolated."""
        surf = gain_surface(self.p, self.s, alphas=[alpha], betas=[beta])
        return float(surf.values[0, 0])

    def max(self) -> tuple[float, float, float]:
        """(α, β, gain) of the grid maximum."""
        a, b = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return float(self.alphas[a]), float(self.betas[b]), float(self.values[a, b])

    def min(self) -> tuple[float, float, float]:
        """(α, β, gain) of the grid minimum."""
        a, b = np.unravel_index(int(np.argmin(self.values)), self.values.shape)
        return float(self.alphas[a]), float(self.betas[b]), float(self.values[a, b])

    def gain_region_fraction(self) -> float:
        """Fraction of grid points with gain > 1 (the 'we win' region)."""
        return float(np.mean(self.values > 1.0))


def gain_surface(p: float, s: int = 20,
                 alphas: Optional[Sequence[float]] = None,
                 betas: Optional[Sequence[float]] = None) -> GainSurface:
    """Evaluate the exact Ḡ_corr(α, β) over a grid (Eqs. (10)–(14), t = 1).

    Per grid point: Ḡ = (1/s)·Σᵢ [(i + 2β) + p·min(i, s−i)·(2 + 3β)]
                                  / (2iα + 2β).
    """
    _check_p(p)
    if s < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")
    a = np.asarray(DEFAULT_ALPHAS if alphas is None else alphas, dtype=float)
    b = np.asarray(DEFAULT_BETAS if betas is None else betas, dtype=float)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ConfigurationError("alphas and betas must be non-empty 1-D")
    if np.any(a < 0.5) or np.any(a > 1.0):
        raise ConfigurationError("alphas must lie in [0.5, 1]")
    if np.any(b < 0.0) or np.any(b > 1.0):
        raise ConfigurationError("betas must lie in [0, 1]")

    i = np.arange(1, s + 1, dtype=float)            # (s,)
    progress = np.minimum(i, s - i)                  # (s,)
    A = a[:, None, None]                             # (A,1,1)
    B = b[None, :, None]                             # (1,B,1)
    I = i[None, None, :]                             # (1,1,s)
    P = progress[None, None, :]
    numer = (I + 2.0 * B) + p * P * (2.0 + 3.0 * B)
    denom = 2.0 * I * A + 2.0 * B
    values = (numer / denom).mean(axis=2)            # (A,B)
    return GainSurface(alphas=a, betas=b, values=values, p=p, s=s)


def figure4_surface(s: int = 20,
                    alphas: Optional[Sequence[float]] = None,
                    betas: Optional[Sequence[float]] = None) -> GainSurface:
    """The paper's Figure 4: Ḡ_corr(α, β) for p = 0.5 (worst case)."""
    return gain_surface(0.5, s, alphas, betas)


def figure5_surface(s: int = 20,
                    alphas: Optional[Sequence[float]] = None,
                    betas: Optional[Sequence[float]] = None) -> GainSurface:
    """The paper's Figure 5: Ḡ_corr(α, β) for p = 1.0 (best case)."""
    return gain_surface(1.0, s, alphas, betas)
