"""Dependability metrics for VDS configurations.

These connect the paper's timing model to the reliability quantities the
related work (§2.2, refs [14] Ziv & Bruck) optimises: shorter test
intervals → lower probability of two faults inside one comparison window →
higher usable reliability.
"""

from __future__ import annotations

import math

from repro.core.conventional import conventional_round_time
from repro.core.params import VDSParameters
from repro.core.smt_model import smt_round_time
from repro.errors import ConfigurationError

__all__ = [
    "availability",
    "detection_latency_bound",
    "interval_completion_probability",
    "double_fault_probability",
]


def detection_latency_bound(params: VDSParameters, smt: bool = False) -> float:
    """Worst-case time from fault to detection: one full round.

    A fault striking right after a comparison is caught at the next one —
    the reason "it is advised to test states more often than saving
    checkpoints" (§2.2).
    """
    return smt_round_time(params) if smt else conventional_round_time(params)


def interval_completion_probability(fault_rate: float,
                                    interval_time: float) -> float:
    """P(no fault during one checkpoint interval), Poisson arrivals."""
    if fault_rate < 0 or interval_time < 0:
        raise ConfigurationError("rate and time must be >= 0")
    return math.exp(-fault_rate * interval_time)


def double_fault_probability(fault_rate: float, window: float) -> float:
    """P(≥ 2 faults inside one comparison window), Poisson arrivals.

    The hazardous case for a duplex system: both versions corrupted before
    a comparison can flag the first fault.
    """
    if fault_rate < 0 or window < 0:
        raise ConfigurationError("rate and window must be >= 0")
    lam = fault_rate * window
    return 1.0 - math.exp(-lam) * (1.0 + lam)


def availability(mission_time: float, recovery_time: float) -> float:
    """Fraction of mission time spent making certified progress."""
    if mission_time <= 0:
        raise ConfigurationError("mission_time must be > 0")
    if recovery_time < 0 or recovery_time > mission_time:
        raise ConfigurationError(
            "recovery_time must lie in [0, mission_time]"
        )
    return (mission_time - recovery_time) / mission_time
