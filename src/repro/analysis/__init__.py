"""repro.analysis — sweeps, metrics, model-vs-simulation comparison, reports.

* :mod:`repro.analysis.sweep` — a generic cartesian parameter-sweep driver
  returning records (used by every TAB-* experiment);
* :mod:`repro.analysis.metrics` — dependability metrics: detection latency,
  availability, interval-completion probability;
* :mod:`repro.analysis.statistics` — summary statistics with confidence
  intervals;
* :mod:`repro.analysis.comparison` — the VAL-1 machinery: run matched
  missions (common fault plans) on both architectures and compare the
  measured gains with the analytical model;
* :mod:`repro.analysis.report` — ASCII rendering of tables and of the
  Fig. 4/5 surfaces.
"""

from repro.analysis.sweep import sweep, SweepRecord
from repro.analysis.metrics import (
    availability,
    detection_latency_bound,
    interval_completion_probability,
)
from repro.analysis.statistics import summarize, Summary
from repro.analysis.comparison import (
    compare_architectures,
    GainComparison,
    measured_recovery_gain,
)
from repro.analysis.sensitivity import gain_elasticities, tornado
from repro.analysis.report import render_table, render_surface

__all__ = [
    "sweep",
    "SweepRecord",
    "availability",
    "detection_latency_bound",
    "interval_completion_probability",
    "summarize",
    "Summary",
    "compare_architectures",
    "GainComparison",
    "measured_recovery_gain",
    "gain_elasticities",
    "tornado",
    "render_table",
    "render_surface",
]
