"""Summary statistics with normal-approximation confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean ± CI of a sample."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, value: float) -> bool:
        """True iff ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high


def summarize(values: Sequence[float], z: float = 1.96) -> Summary:
    """Mean with a z-based (normal approximation) confidence interval.

    For the replication counts used in the experiments (≥ 30) the normal
    approximation is adequate; scipy's t-quantiles are avoided to keep the
    core dependency set to NumPy.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize needs at least one value")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(1, mean, 0.0, mean, mean)
    std = float(arr.std(ddof=1))
    half = z * std / float(np.sqrt(arr.size))
    return Summary(int(arr.size), mean, std, mean - half, mean + half)
