"""Parameter sensitivity of the paper's headline gain.

A practitioner adopting the model must know which inputs to measure
carefully: α comes from benchmarking (noisy), β from OS instrumentation,
p from the predictor's track record.  This module computes local
sensitivities of Ḡ_corr (Eq. (13), exact) at an operating point:

* elasticities ``(∂G/G)/(∂x/x)`` by central finite differences — how a
  1 % measurement error in each parameter moves the predicted gain;
* a tornado table over symmetric parameter ranges.

Expected shape at the Pentium-4 point: α dominates (elasticity ≈ −0.9),
p matters about half as much, β is almost negligible — so benchmark α
first, instrument β last.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.limits import prediction_scheme_mean_gain_vectorized
from repro.core.params import VDSParameters
from repro.errors import ConfigurationError

__all__ = ["Elasticities", "gain_elasticities", "tornado"]


def _gain(alpha: float, beta: float, p: float, s: int) -> float:
    params = VDSParameters(alpha=alpha, beta=beta, s=s)
    return prediction_scheme_mean_gain_vectorized(params, p)


@dataclass(frozen=True)
class Elasticities:
    """Local elasticities of Ḡ_corr at an operating point."""

    alpha: float
    beta: float
    p: float
    gain: float

    def dominant(self) -> str:
        """Name of the parameter with the largest |elasticity|."""
        mags = {"alpha": abs(self.alpha), "beta": abs(self.beta),
                "p": abs(self.p)}
        return max(mags, key=mags.__getitem__)


def gain_elasticities(alpha: float = 0.65, beta: float = 0.1,
                      p: float = 0.5, s: int = 20,
                      rel_step: float = 0.01) -> Elasticities:
    """Central-difference elasticities of Ḡ_corr in (α, β, p)."""
    if not (0 < rel_step < 0.2):
        raise ConfigurationError("rel_step must lie in (0, 0.2)")
    g0 = _gain(alpha, beta, p, s)

    def elasticity(name: str, value: float) -> float:
        h = value * rel_step if value else rel_step
        lo = dict(alpha=alpha, beta=beta, p=p)
        hi = dict(alpha=alpha, beta=beta, p=p)
        lo[name] = max(0.0, value - h)
        hi[name] = value + h
        if name == "alpha":
            lo[name] = max(0.5, lo[name])
            hi[name] = min(1.0, hi[name])
        if name in ("beta", "p"):
            hi[name] = min(1.0, hi[name])
        span = hi[name] - lo[name]
        if span <= 0:
            return 0.0
        dg = _gain(hi["alpha"], hi["beta"], hi["p"], s) \
            - _gain(lo["alpha"], lo["beta"], lo["p"], s)
        base = value if value else 1.0
        return (dg / g0) / (span / base)

    return Elasticities(
        alpha=elasticity("alpha", alpha),
        beta=elasticity("beta", beta),
        p=elasticity("p", p),
        gain=g0,
    )


def tornado(alpha: float = 0.65, beta: float = 0.1, p: float = 0.5,
            s: int = 20, rel_range: float = 0.10
            ) -> list[tuple[str, float, float]]:
    """Gain swing per parameter over ± ``rel_range`` (tornado rows).

    Returns ``[(name, gain_at_low, gain_at_high), ...]`` sorted by swing
    magnitude, descending.
    """
    if not (0 < rel_range < 0.5):
        raise ConfigurationError("rel_range must lie in (0, 0.5)")
    rows = []
    for name, value in (("alpha", alpha), ("beta", beta), ("p", p)):
        lo_v = value * (1 - rel_range)
        hi_v = value * (1 + rel_range)
        if name == "alpha":
            lo_v, hi_v = max(0.5, lo_v), min(1.0, hi_v)
        else:
            lo_v, hi_v = max(0.0, lo_v), min(1.0, hi_v)
        args = dict(alpha=alpha, beta=beta, p=p)
        args[name] = lo_v
        g_lo = _gain(args["alpha"], args["beta"], args["p"], s)
        args[name] = hi_v
        g_hi = _gain(args["alpha"], args["beta"], args["p"], s)
        rows.append((name, g_lo, g_hi))
    rows.sort(key=lambda r: abs(r[2] - r[1]), reverse=True)
    return rows
