"""Continuous-time Markov dependability models of VDS configurations.

Connects the paper's *performance* result to *dependability*: a faster
recovery (the SMT gain) shortens the window during which a second fault is
dangerous, raising availability and MTTF.  Three models, built on a small
generic CTMC solver:

* **simplex** — one unprotected version: any fault is a failure (repair
  restores service);
* **VDS (conventional)** — faults are detected with coverage ``c`` and
  recovered at rate ``mu`` (= 1/mean stop-and-retry time); a second fault
  during recovery, or an uncovered fault, causes a failure needing repair;
* **VDS (SMT)** — identical structure with the recovery rate scaled by the
  paper's recovery gain Ḡ_corr.

Availability = steady-state probability of the UP states; MTTF = expected
time to first FAILED entry from UP (absorbing analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CTMC", "simplex_model", "vds_model", "DependabilityReport",
           "compare_dependability"]


class CTMC:
    """A finite continuous-time Markov chain."""

    def __init__(self, states: Sequence[str],
                 rates: Mapping[tuple[str, str], float]):
        if len(set(states)) != len(states):
            raise ConfigurationError("duplicate state names")
        self.states = list(states)
        self.index = {s: k for k, s in enumerate(self.states)}
        n = len(self.states)
        Q = np.zeros((n, n))
        for (src, dst), rate in rates.items():
            if src not in self.index or dst not in self.index:
                raise ConfigurationError(f"unknown state in ({src}, {dst})")
            if src == dst:
                raise ConfigurationError("self-loops are not allowed")
            if rate < 0:
                raise ConfigurationError("rates must be >= 0")
            Q[self.index[src], self.index[dst]] += rate
        np.fill_diagonal(Q, -Q.sum(axis=1))
        self.Q = Q

    def steady_state(self) -> np.ndarray:
        """Stationary distribution π with πQ = 0, Σπ = 1."""
        n = len(self.states)
        A = np.vstack([self.Q.T, np.ones(n)])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(A, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise ConfigurationError("degenerate chain: no stationary mass")
        return pi / total

    def probability(self, states: Sequence[str]) -> float:
        """Steady-state probability of a set of states."""
        pi = self.steady_state()
        return float(sum(pi[self.index[s]] for s in states))

    def mean_time_to_absorption(self, start: str,
                                absorbing: Sequence[str]) -> float:
        """Expected time from ``start`` to first entry of ``absorbing``.

        Solves −Q_tt · m = 1 over the transient states t.
        """
        absorbing_set = set(absorbing)
        transient = [s for s in self.states if s not in absorbing_set]
        if start in absorbing_set:
            return 0.0
        idx = [self.index[s] for s in transient]
        Qtt = self.Q[np.ix_(idx, idx)]
        m = np.linalg.solve(-Qtt, np.ones(len(idx)))
        return float(m[transient.index(start)])


def simplex_model(fault_rate: float, repair_rate: float) -> CTMC:
    """One unprotected version: UP --λ--> FAILED --ρ--> UP."""
    _check_rates(fault_rate, repair_rate)
    return CTMC(
        ["UP", "FAILED"],
        {("UP", "FAILED"): fault_rate, ("FAILED", "UP"): repair_rate},
    )


def vds_model(fault_rate: float, recovery_rate: float, repair_rate: float,
              coverage: float = 0.99) -> CTMC:
    """The VDS chain: UP / RECOVERING / FAILED.

    * UP → RECOVERING at λ·c (fault detected by the comparison),
    * UP → FAILED at λ·(1−c) (uncovered: silent corruption discovered
      late, requires full repair),
    * RECOVERING → UP at μ (stop-and-retry or roll-forward completes),
    * RECOVERING → FAILED at λ (second fault during recovery: no majority;
      modelled pessimistically as a service failure),
    * FAILED → UP at ρ.
    """
    _check_rates(fault_rate, recovery_rate, repair_rate)
    if not (0.0 <= coverage <= 1.0):
        raise ConfigurationError("coverage must lie in [0, 1]")
    return CTMC(
        ["UP", "RECOVERING", "FAILED"],
        {
            ("UP", "RECOVERING"): fault_rate * coverage,
            ("UP", "FAILED"): fault_rate * (1.0 - coverage),
            ("RECOVERING", "UP"): recovery_rate,
            ("RECOVERING", "FAILED"): fault_rate,
            ("FAILED", "UP"): repair_rate,
        },
    )


@dataclass(frozen=True)
class DependabilityReport:
    """Availability and MTTF of the three configurations."""

    availability_simplex: float
    availability_vds_conv: float
    availability_vds_smt: float
    mttf_simplex: float
    mttf_vds_conv: float
    mttf_vds_smt: float


def compare_dependability(fault_rate: float, conv_recovery_time: float,
                          smt_recovery_time: float, repair_rate: float,
                          coverage: float = 0.99) -> DependabilityReport:
    """Build all three chains and extract the headline numbers.

    ``conv_recovery_time``/``smt_recovery_time`` are the mean recovery
    durations (e.g. means of Eq. (2) / Eq. (5) over fault rounds); the SMT
    advantage enters as a higher recovery rate.
    """
    if conv_recovery_time <= 0 or smt_recovery_time <= 0:
        raise ConfigurationError("recovery times must be > 0")
    simplex = simplex_model(fault_rate, repair_rate)
    conv = vds_model(fault_rate, 1.0 / conv_recovery_time, repair_rate,
                     coverage)
    smt = vds_model(fault_rate, 1.0 / smt_recovery_time, repair_rate,
                    coverage)
    # Availability counts only UP (certified forward progress): time in
    # RECOVERING is the performance price of a fault, time in FAILED the
    # dependability price.
    return DependabilityReport(
        availability_simplex=simplex.probability(["UP"]),
        availability_vds_conv=conv.probability(["UP"]),
        availability_vds_smt=smt.probability(["UP"]),
        mttf_simplex=simplex.mean_time_to_absorption("UP", ["FAILED"]),
        mttf_vds_conv=conv.mean_time_to_absorption("UP", ["FAILED"]),
        mttf_vds_smt=smt.mean_time_to_absorption("UP", ["FAILED"]),
    )


def _check_rates(*rates: float) -> None:
    for r in rates:
        if r <= 0:
            raise ConfigurationError(f"rates must be > 0, got {r!r}")
