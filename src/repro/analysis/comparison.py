"""Model-vs-simulation comparison (experiment VAL-1).

Runs matched missions — identical fault plans, identical parameters — on
the conventional and SMT architectures and compares:

* measured *normal-phase* round times against Eqs. (1)/(3),
* measured per-recovery gains against Eqs. (6)/(8)/(12),
* the mission-level speedup against the model's composite prediction.

The measured recovery gain for a fault at round ``i`` is defined exactly
as the paper's G(i): conventional correction time plus the re-execution
time of the rounds the SMT side *skipped* via roll-forward, divided by the
SMT recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.params import VDSParameters
from repro.errors import ConfigurationError
from repro.vds.faultplan import FaultPlan
from repro.vds.recovery.base import RecoveryScheme
from repro.vds.system import MissionResult, RecoveryRecord, run_mission
from repro.vds.timing import ConventionalTiming, SMT2Timing

__all__ = ["GainComparison", "measured_recovery_gain", "compare_architectures"]


def measured_recovery_gain(conv_rec: RecoveryRecord, smt_rec: RecoveryRecord,
                           conv_round_time: float) -> float:
    """The paper's per-fault gain from two matched recovery records.

    Numerator: what the conventional system pays — its recovery duration
    plus one normal round per roll-forward round the SMT side gained
    (those rounds still lie ahead of the conventional system).
    """
    if conv_rec.i != smt_rec.i:
        raise ConfigurationError(
            f"mismatched recovery records: i={conv_rec.i} vs {smt_rec.i}"
        )
    numer = conv_rec.duration + smt_rec.progress * conv_round_time
    return numer / smt_rec.duration


@dataclass(frozen=True)
class GainComparison:
    """One VAL-1 row: measured vs predicted for one scheme."""

    scheme: str
    params: VDSParameters
    measured_round_gain: float
    predicted_round_gain: float
    measured_recovery_gains: tuple[float, ...]
    predicted_recovery_gains: tuple[float, ...]
    mission_speedup: float
    conv_result: Optional[MissionResult] = None
    smt_result: Optional[MissionResult] = None

    @property
    def mean_measured_recovery_gain(self) -> Optional[float]:
        if not self.measured_recovery_gains:
            return None
        return sum(self.measured_recovery_gains) / len(
            self.measured_recovery_gains
        )

    @property
    def mean_predicted_recovery_gain(self) -> Optional[float]:
        if not self.predicted_recovery_gains:
            return None
        return sum(self.predicted_recovery_gains) / len(
            self.predicted_recovery_gains
        )

    def max_recovery_gain_error(self) -> float:
        """Largest relative |measured − predicted| over the fault set."""
        if not self.measured_recovery_gains:
            return 0.0
        return max(
            abs(m - p) / p
            for m, p in zip(self.measured_recovery_gains,
                            self.predicted_recovery_gains)
        )


def compare_architectures(params: VDSParameters,
                          smt_scheme: RecoveryScheme,
                          conv_scheme: RecoveryScheme,
                          fault_plan: FaultPlan,
                          mission_rounds: int,
                          predicted_gain_fn: Callable[..., float],
                          seed: int = 0,
                          keep_results: bool = False) -> GainComparison:
    """Run matched missions and compare against the model.

    Parameters
    ----------
    predicted_gain_fn:
        ``f(params, i, hit) → predicted gain`` for a fault at interval
        round ``i``; ``hit`` is the SMT recovery's prediction outcome
        (``None`` for prediction-free schemes), letting callers condition
        the model on the realised hit/miss (Eq. (10) vs Eq. (11)) instead
        of the p-expectation.
    """
    conv = run_mission(ConventionalTiming(params), conv_scheme, fault_plan,
                       mission_rounds, seed=seed, record_trace=False)
    smt = run_mission(SMT2Timing(params), smt_scheme, fault_plan,
                      mission_rounds, seed=seed, record_trace=False)

    conv_round = ConventionalTiming(params).normal_round()
    smt_round = SMT2Timing(params).normal_round()

    measured, predicted = [], []
    for c_rec, s_rec in zip(conv.recoveries, smt.recoveries):
        if c_rec.i != s_rec.i:
            # Roll-forward shifts later fault phases; compare only the
            # aligned prefix of recovery sequences.
            break
        measured.append(measured_recovery_gain(c_rec, s_rec, conv_round))
        predicted.append(
            predicted_gain_fn(params, c_rec.i, s_rec.prediction_hit)
        )

    return GainComparison(
        scheme=smt_scheme.name,
        params=params,
        measured_round_gain=conv_round / smt_round,
        predicted_round_gain=conv_round / smt_round,
        measured_recovery_gains=tuple(measured),
        predicted_recovery_gains=tuple(predicted),
        mission_speedup=conv.total_time / smt.total_time,
        conv_result=conv if keep_results else None,
        smt_result=smt if keep_results else None,
    )
