"""ASCII rendering of tables and the Fig. 4/5 gain surfaces.

All experiment output is plain text so benchmarks can print the same rows
and series the paper reports without a plotting stack.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.surfaces import GainSurface

__all__ = ["render_table", "render_surface", "render_csv", "format_value"]


def format_value(value: Any, precision: int = 3) -> str:
    """Uniform cell formatting (floats rounded, others str())."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None, precision: int = 3) -> str:
    """A GitHub-style ASCII table."""
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[c]) for r in cells)) if cells else len(str(h))
        for c, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "| " + " | ".join(
            p.ljust(w) for p, w in zip(parts, widths)
        ) + " |"

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(r) for r in cells)
    return "\n".join(out) + "\n"


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]],
               precision: int = 6) -> str:
    """The same table as RFC-4180-ish CSV (for spreadsheets/pandas).

    Cells containing commas, quotes or newlines are quoted; floats keep
    ``precision`` digits so results diff cleanly across runs.
    """
    def cell(v: Any) -> str:
        text = format_value(v, precision)
        if any(ch in text for ch in ',"\n'):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines.extend(",".join(cell(v) for v in row) for row in rows)
    return "\n".join(lines) + "\n"


def render_surface(surface: GainSurface, precision: int = 2,
                   mark_breakeven: bool = True) -> str:
    """The Fig. 4/5 surface as a β-by-α grid of gain values.

    Cells with gain > 1 (the SMT VDS wins) are suffixed ``+`` when
    ``mark_breakeven`` is set, making the break-even frontier visible in
    plain text — the shape readers take from the paper's 3-D plots.
    """
    header = ["beta\\alpha"] + [f"{a:.2f}" for a in surface.alphas]
    rows: list[list[str]] = []
    for bi, beta in enumerate(surface.betas):
        row: list[str] = [f"{beta:.2f}"]
        for ai in range(len(surface.alphas)):
            v = float(surface.values[ai, bi])
            cell = f"{v:.{precision}f}"
            if mark_breakeven and v > 1.0:
                cell += "+"
            row.append(cell)
        rows.append(row)
    title = (f"Gain G_corr(alpha, beta) for p = {surface.p:g}, "
             f"s = {surface.s} ('+' marks gain > 1)")
    return render_table(header, rows, title=title)
