"""Checkpoint-interval optimisation (the ref [14] Ziv & Bruck question).

The paper fixes s = 20 "as the figures are near the limit there", but a
deployed VDS must *choose* s: long intervals amortise the expensive stable
-storage write W, short intervals bound the re-execution a fault costs.
First-order renewal analysis (one fault per interval at most, faults
Poisson with rate λ in time, uniformly located within the interval —
exactly the paper's fault-position assumption):

    E[time per certified round](s)
        = T_round + W/s + λ · T_round · E_i[C_net(i)]

where ``C_net(i)`` is the net time a fault at round i costs: the recovery
duration minus the re-execution the roll-forward saved.  For stop-and-retry
``C_net`` grows linearly in s, giving the classic Young-style square-root
optimum s* ≈ √(2W/(λ·t·T_round)); roll-forward schemes shrink the loss
term and push s* up — cheaper recoveries justify longer intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.conventional import (
    conventional_correction_time,
    conventional_round_time,
)
from repro.core.params import VDSParameters
from repro.core.prediction_model import prediction_rollforward_rounds
from repro.core.smt_model import smt_correction_time, smt_round_time
from repro.errors import ConfigurationError

__all__ = [
    "expected_net_recovery_cost",
    "time_per_round",
    "optimal_checkpoint_interval",
    "young_approximation",
    "CheckpointPlan",
]


def expected_net_recovery_cost(params: VDSParameters, scheme: str,
                               p: float = 0.5) -> float:
    """E_i[C_net(i)] over i = 1..s for one recovery scheme.

    ``scheme`` ∈ {"stop-and-retry", "smt-stop-and-retry", "prediction"}.
    The net cost subtracts, for roll-forward schemes, the normal-phase
    time of the rounds the roll-forward certified.
    """
    s = params.s
    total = 0.0
    if scheme == "stop-and-retry":
        for i in params.rounds():
            total += conventional_correction_time(params, i)
    elif scheme == "smt-stop-and-retry":
        # Retry runs alone on the SMT core (footnote 1: conventional speed).
        for i in params.rounds():
            total += i * params.t + 2.0 * params.t_cmp
    elif scheme == "prediction":
        round_time = smt_round_time(params)
        for i in params.rounds():
            saved = p * prediction_rollforward_rounds(params, i) * round_time
            total += smt_correction_time(params, i) - saved
    else:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; expected stop-and-retry, "
            "smt-stop-and-retry or prediction"
        )
    return total / s


def time_per_round(params: VDSParameters, scheme: str, fault_rate: float,
                   checkpoint_write: float, p: float = 0.5) -> float:
    """Expected time per certified round at the given s (first order)."""
    if fault_rate < 0 or checkpoint_write < 0:
        raise ConfigurationError("fault_rate and checkpoint_write must be >= 0")
    smt = scheme in ("smt-stop-and-retry", "prediction")
    round_time = smt_round_time(params) if smt \
        else conventional_round_time(params)
    c_net = expected_net_recovery_cost(params, scheme, p)
    return round_time + checkpoint_write / params.s \
        + fault_rate * round_time * c_net


@dataclass(frozen=True)
class CheckpointPlan:
    """Result of the interval optimisation."""

    scheme: str
    s_star: int
    time_per_round: float
    curve: tuple[tuple[int, float], ...]   #: (s, time-per-round) samples

    def penalty_at(self, s: int) -> float:
        """Relative cost of running at ``s`` instead of ``s_star``."""
        lookup = dict(self.curve)
        if s not in lookup:
            raise ConfigurationError(f"s={s} was not sampled")
        return lookup[s] / self.time_per_round - 1.0


def optimal_checkpoint_interval(params: VDSParameters, scheme: str,
                                fault_rate: float, checkpoint_write: float,
                                p: float = 0.5,
                                s_max: int = 400) -> CheckpointPlan:
    """Minimise expected time per certified round over integer s."""
    best_s, best_v = 1, float("inf")
    curve = []
    for s in range(1, s_max + 1):
        q = params.with_(s=s)
        v = time_per_round(q, scheme, fault_rate, checkpoint_write, p)
        curve.append((s, v))
        if v < best_v:
            best_s, best_v = s, v
    return CheckpointPlan(scheme, best_s, best_v, tuple(curve))


def young_approximation(params: VDSParameters, fault_rate: float,
                        checkpoint_write: float) -> float:
    """Young's closed-form optimum for the stop-and-retry scheme.

    Minimising ``W/s + λ·T_round·(s·t/2)`` gives
    ``s* = sqrt(2·W / (λ·T_round·t))``.
    """
    if fault_rate <= 0:
        raise ConfigurationError("Young approximation needs fault_rate > 0")
    round_time = conventional_round_time(params)
    return math.sqrt(
        2.0 * checkpoint_write / (fault_rate * round_time * params.t)
    )
