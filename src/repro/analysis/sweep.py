"""Cartesian parameter sweeps.

Every TAB-* experiment is "evaluate f over a grid"; this driver keeps that
uniform: named axes, cartesian product, one record per point, records
convertible to table rows for :func:`repro.analysis.report.render_table`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["SweepRecord", "sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point: the axis values plus the measured outputs."""

    point: dict[str, Any]
    outputs: dict[str, Any]

    def row(self, columns: Sequence[str]) -> list[Any]:
        """Values for the listed columns (axes and outputs may mix)."""
        out = []
        for c in columns:
            if c in self.point:
                out.append(self.point[c])
            elif c in self.outputs:
                out.append(self.outputs[c])
            else:
                raise KeyError(f"unknown column {c!r}")
        return out


def sweep(axes: Mapping[str, Sequence[Any]],
          fn: Callable[..., Mapping[str, Any]]) -> list[SweepRecord]:
    """Evaluate ``fn(**point)`` over the cartesian product of ``axes``.

    ``fn`` returns a mapping of output names to values.

    Example
    -------
    >>> recs = sweep({"x": [1, 2], "y": [10]},
    ...              lambda x, y: {"sum": x + y})
    >>> [(r.point["x"], r.outputs["sum"]) for r in recs]
    [(1, 11), (2, 12)]
    """
    names = list(axes)
    if not names:
        raise ValueError("sweep needs at least one axis")
    records: list[SweepRecord] = []
    for values in itertools.product(*(axes[n] for n in names)):
        point = dict(zip(names, values))
        outputs = dict(fn(**point))
        records.append(SweepRecord(point=point, outputs=outputs))
    return records
