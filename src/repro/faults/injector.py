"""Random fault-specification generation.

:class:`FaultInjector` draws :class:`~repro.faults.models.FaultSpec` plans
from a seeded stream.  The default mix follows the paper's emphasis:
transients dominate ("transient faults … much more frequent"), register
flips are the canonical model ("modeled as bit flips in registers"), and a
small crash/permanent tail exercises the other recovery paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.errors import FaultModelError
from repro.faults.models import FaultKind, FaultSpec
from repro.isa.instructions import REGISTER_COUNT, WORD_BITS

__all__ = ["FaultInjector", "DEFAULT_MIX"]

#: Default fault-class mix (probabilities; sums to 1).
DEFAULT_MIX: Mapping[FaultKind, float] = {
    FaultKind.TRANSIENT_REGISTER: 0.45,
    FaultKind.TRANSIENT_MEMORY: 0.25,
    FaultKind.TRANSIENT_PC: 0.10,
    FaultKind.CRASH: 0.08,
    FaultKind.PERMANENT_ALU: 0.07,
    FaultKind.PERMANENT_MEMORY: 0.05,
}


@dataclass
class FaultInjector:
    """Draws random fault plans.

    Parameters
    ----------
    rng:
        A NumPy generator (use :class:`repro.sim.rng.RandomStreams` for
        reproducible campaigns).
    mix:
        Probability of each fault class.
    memory_words:
        Size of the victim's memory (for address draws).
    max_instruction:
        Upper bound (exclusive) for the strike instant within the victim's
        execution.
    """

    rng: np.random.Generator
    mix: Mapping[FaultKind, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    memory_words: int = 256
    max_instruction: int = 1000

    def __post_init__(self) -> None:
        total = float(sum(self.mix.values()))
        if not np.isclose(total, 1.0, atol=1e-9):
            raise FaultModelError(f"fault mix must sum to 1, got {total}")
        if any(p < 0 for p in self.mix.values()):
            raise FaultModelError("fault mix probabilities must be >= 0")
        if self.memory_words < 1 or self.max_instruction < 1:
            raise FaultModelError("memory_words and max_instruction must be >= 1")
        self._kinds = list(self.mix.keys())
        self._probs = np.asarray([self.mix[k] for k in self._kinds], dtype=float)
        self._probs /= self._probs.sum()

    def with_rng(self, rng: np.random.Generator) -> "FaultInjector":
        """A clone drawing from ``rng``, with the same mix and bounds.

        Shallow-copies the already-validated injector instead of
        re-running construction validation — campaigns clone the template
        once per trial, so the per-clone cost matters.  The clone shares
        the (read-only) kind list and probability vector, keeping the draw
        order identical to a freshly constructed injector.
        """
        import copy

        clone = copy.copy(self)
        clone.rng = rng
        return clone

    def draw_kind(self) -> FaultKind:
        """Draw a fault class according to the mix."""
        idx = int(self.rng.choice(len(self._kinds), p=self._probs))
        return self._kinds[idx]

    def draw(self, kind: Optional[FaultKind] = None) -> FaultSpec:
        """Draw a complete fault plan (optionally of a forced class)."""
        kind = kind or self.draw_kind()
        at = int(self.rng.integers(0, self.max_instruction))
        bit = int(self.rng.integers(0, WORD_BITS))
        if kind is FaultKind.TRANSIENT_REGISTER:
            return FaultSpec(kind, at, register=int(self.rng.integers(0, REGISTER_COUNT)),
                             bit=bit)
        if kind in (FaultKind.TRANSIENT_MEMORY, FaultKind.PERMANENT_MEMORY):
            return FaultSpec(kind, at,
                             address=int(self.rng.integers(0, self.memory_words)),
                             bit=bit,
                             stuck_value=int(self.rng.integers(0, 2)))
        if kind is FaultKind.TRANSIENT_PC:
            # Restrict to low pc bits so the flip lands near the program.
            return FaultSpec(kind, at, bit=int(self.rng.integers(0, 8)))
        if kind is FaultKind.PERMANENT_ALU:
            return FaultSpec(kind, at, bit=bit,
                             stuck_value=int(self.rng.integers(0, 2)))
        if kind in (FaultKind.CRASH, FaultKind.PROCESSOR_STOP):
            return FaultSpec(kind, at)
        raise FaultModelError(f"unhandled fault kind {kind}")  # pragma: no cover

    def draw_many(self, n: int, kind: Optional[FaultKind] = None) -> list[FaultSpec]:
        """Draw ``n`` independent fault plans."""
        if n < 0:
            raise FaultModelError(f"n must be >= 0, got {n}")
        return [self.draw(kind) for _ in range(n)]
