"""Fault arrival processes and radiation-environment presets.

The paper motivates VDS with environments where "transient faults are much
more frequent due to radiation" (space missions) and predicts that
shrinking feature sizes make them frequent on the ground too (ref [10],
Shivakumar et al. DSN'02).  We model arrivals as renewal processes:

* :class:`PoissonArrivals` — exponential inter-arrivals (the standard SEU
  model; memoryless, matching the paper's uniform-round-of-fault
  assumption when conditioned on one fault per interval);
* :class:`WeibullArrivals` — shape < 1 gives *bursty* arrivals (solar
  events), shape > 1 wear-out-like clustering.  Bursty streams are what
  make the fault-history predictors of :mod:`repro.predict` useful (§5).

:class:`Environment` presets give relative SEU rates; absolute numbers are
synthetic but ordered like the literature (ground ≪ avionics ≪ LEO ≪ deep
space).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import FaultModelError

__all__ = ["ArrivalProcess", "PoissonArrivals", "WeibullArrivals",
           "Environment", "ENVIRONMENTS"]


class ArrivalProcess(ABC):
    """A stream of fault arrival times."""

    @abstractmethod
    def inter_arrival(self, rng: np.random.Generator) -> float:
        """Draw the next inter-arrival time (> 0)."""

    def arrivals_until(self, rng: np.random.Generator,
                       horizon: float) -> list[float]:
        """All arrival times in ``[0, horizon)``."""
        if horizon < 0:
            raise FaultModelError(f"horizon must be >= 0, got {horizon}")
        out: list[float] = []
        t = 0.0
        while True:
            t += self.inter_arrival(rng)
            if t >= horizon:
                return out
            out.append(t)

    def stream(self, rng: np.random.Generator) -> Iterator[float]:
        """Unbounded generator of arrival times."""
        t = 0.0
        while True:
            t += self.inter_arrival(rng)
            yield t


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with ``rate`` faults per time unit."""

    rate: float

    def __post_init__(self) -> None:
        if not (self.rate > 0):
            raise FaultModelError(f"rate must be > 0, got {self.rate}")

    def inter_arrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def expected_faults(self, horizon: float) -> float:
        """Mean number of faults in ``[0, horizon)``."""
        return self.rate * horizon

    def p_fault_in_interval(self, length: float) -> float:
        """P(at least one fault in an interval of the given length)."""
        return 1.0 - float(np.exp(-self.rate * length))


@dataclass(frozen=True)
class WeibullArrivals(ArrivalProcess):
    """Weibull renewal process.

    ``shape < 1``: heavy clustering (a fault makes another one soon more
    likely — radiation bursts); ``shape = 1``: Poisson; ``shape > 1``:
    regular arrivals.
    """

    scale: float
    shape: float = 0.7

    def __post_init__(self) -> None:
        if not (self.scale > 0) or not (self.shape > 0):
            raise FaultModelError("scale and shape must be > 0")

    def inter_arrival(self, rng: np.random.Generator) -> float:
        draw = float(self.scale * rng.weibull(self.shape))
        # Guard the (measure-zero) exact-0 draw to keep processes proper.
        return max(draw, 1e-12)


@dataclass(frozen=True)
class Environment:
    """A named radiation environment with a relative SEU rate."""

    name: str
    description: str
    #: transient faults per million rounds (synthetic but ordered per the
    #: literature's qualitative ranking)
    seu_per_million_rounds: float
    #: fraction of faults that are bursts (motivates Weibull modelling)
    burst_fraction: float = 0.0

    def poisson(self, rounds_per_time_unit: float = 1.0) -> PoissonArrivals:
        """The Poisson process for this environment, in round time units."""
        rate = self.seu_per_million_rounds * rounds_per_time_unit / 1e6
        return PoissonArrivals(rate=rate)


#: Presets, ordered by harshness.
ENVIRONMENTS: dict[str, Environment] = {
    env.name: env
    for env in (
        Environment("ground", "sea level, modern feature size", 0.5),
        Environment("avionics", "civil aviation altitude", 150.0, 0.05),
        Environment("leo", "low earth orbit (e.g. ISS experiments)",
                    2_000.0, 0.2),
        Environment("deep-space", "interplanetary mission, solar events",
                    20_000.0, 0.45),
    )
}
