"""Fault-free prefix memoization for duplex trials.

Every trial of a campaign re-executes the *same* fault-free duplex
computation up to its strike round before anything interesting happens —
for a fault landing in round *j*, rounds 1 … *j*−1 are byte-for-byte the
clean execution.  This module computes that clean execution once per
(version pair, limits) configuration, records the end-of-round
architectural states of both machines, and lets
:func:`~repro.faults.campaign.run_duplex_trial` resume a trial directly
at round *j*−1 via :meth:`Machine.restore`.  Combined with copy-on-write
snapshots the restore itself copies nothing.

Exactness
---------
The memoized states are produced by the very loop the trial runs (same
round budgets, same sync boundaries), and the builder verifies the clean
run is well-behaved: no trap, no hang, no end-of-round mismatch.  Any
anomaly marks the prefix unusable and every trial falls back to full
execution, so enabling the cache can never change a campaign's results —
a property the test suite asserts bit-exactly.

Only fault kinds with a well-defined single-victim strike instant use the
prefix (transients and crashes); permanent faults perturb execution from
round 1 and processor stops race both machines to the instant, so both
fall back.  With the default fault mix that still covers ~88 % of trials.

The in-process memo is keyed by
:func:`repro.parallel.cache.execution_prefix_fingerprint` and bounded;
each worker process of a sharded campaign builds a given prefix at most
once.  Disable with ``VDS_PREFIX_CACHE=0``; bound the memo with
``VDS_PREFIX_CACHE_MAX`` (default 4 configurations).
"""

from __future__ import annotations

import logging
import os
from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.diversity.generator import DiverseVersion
from repro.errors import MachineFault
from repro.isa.machine import Machine
from repro.isa.state import ArchState

__all__ = [
    "CleanPrefix",
    "build_clean_prefix",
    "get_clean_prefix",
    "clear_prefix_memo",
    "prefix_cache_enabled",
]

logger = logging.getLogger(__name__)


def prefix_cache_enabled() -> bool:
    """Whether the clean-prefix memo is enabled (``VDS_PREFIX_CACHE``)."""
    raw = os.environ.get("VDS_PREFIX_CACHE", "1").strip().lower()
    return raw not in {"0", "false", "off", "no"}


def _memo_limit() -> int:
    try:
        return max(1, int(os.environ.get("VDS_PREFIX_CACHE_MAX", "4")))
    except ValueError:
        return 4


@dataclass(frozen=True)
class CleanPrefix:
    """The memoized fault-free duplex execution of one version pair.

    Attributes
    ----------
    snaps:
        ``snaps[r-1]`` is the pair of end-of-round-*r* machine states.  A
        machine that halted in an earlier round repeats its final state.
    instret:
        Per machine, the cumulative retired-instruction count at the end
        of each round (``instret[v][r-1]`` after round *r*) — the strike
        instant is located against this trajectory.
    halt_round:
        Per machine, the 1-based round in which it halted (None if it
        never did within the built rounds).
    total_rounds:
        Rounds built.  When ``complete`` this is the round in which the
        trial loop observes both machines halted.
    complete:
        True when the clean run finished (both machines halted) with
        every end-of-round comparison clean.
    final_output:
        Machine 1's output stream at completion (oracle comparison for
        trials whose fault never strikes).
    round_instructions, memory_words, max_rounds:
        The limits the prefix was built under; a trial with different
        limits must not use it.
    """

    snaps: Tuple[Tuple[ArchState, ArchState], ...]
    instret: Tuple[Tuple[int, ...], Tuple[int, ...]]
    halt_round: Tuple[Optional[int], Optional[int]]
    total_rounds: int
    complete: bool
    final_output: Tuple[int, ...]
    round_instructions: int
    memory_words: int
    max_rounds: int

    def matches(self, round_instructions: int, memory_words: int,
                max_rounds: int) -> bool:
        return (self.round_instructions == round_instructions
                and self.memory_words == memory_words
                and self.max_rounds == max_rounds)

    def strike_round(self, victim: int, at_instruction: int) -> Optional[int]:
        """The round in which a transient at ``at_instruction`` strikes.

        The trial's injection logic fires the fault in the first round
        whose end-of-round instret exceeds the instant, so this is the
        smallest *j* with ``at_instruction < instret[victim][j]``.  Returns
        ``None`` when the victim halts before ever reaching the instant
        (the fault has no effect) — only meaningful when ``complete``.
        """
        trajectory = self.instret[victim - 1]
        idx = bisect_right(trajectory, at_instruction)
        if idx >= len(trajectory):
            return None
        return idx + 1


def build_clean_prefix(version_a: DiverseVersion, version_b: DiverseVersion,
                       round_instructions: int, memory_words: int,
                       max_rounds: int) -> Optional[CleanPrefix]:
    """Execute the fault-free duplex run and record it round by round.

    Returns ``None`` when the clean run misbehaves (trap, hung round, or
    end-of-round mismatch) — such configurations get no memoization and
    every trial runs in full, which is always correct.
    """
    import numpy as np

    masks = [version_a.encoding_mask or 0, version_b.encoding_mask or 0]
    machines = [
        Machine(version_a.program, memory_words=memory_words,
                inputs=version_a.inputs, name="V1", fill=masks[0]),
        Machine(version_b.program, memory_words=memory_words,
                inputs=version_b.inputs, name="V2", fill=masks[1]),
    ]
    snaps: list[Tuple[ArchState, ArchState]] = []
    instret: Tuple[list[int], list[int]] = ([], [])
    halt_round: list[Optional[int]] = [None, None]
    complete = False
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        for idx, m in enumerate(machines):
            if m.halted:
                continue
            try:
                r = m.run_round(round_instructions)
            except MachineFault:
                logger.warning("clean duplex run trapped in round %d; "
                               "prefix memoization disabled for this pair",
                               rounds)
                return None
            if r.budget_exhausted:
                logger.warning("clean duplex run hung in round %d; "
                               "prefix memoization disabled for this pair",
                               rounds)
                return None
            if m.halted and halt_round[idx] is None:
                halt_round[idx] = rounds
        mem0 = machines[0].memory ^ np.uint32(masks[0])
        mem1 = machines[1].memory ^ np.uint32(masks[1])
        if (machines[0].output != machines[1].output
                or machines[0].halted != machines[1].halted
                or not np.array_equal(mem0, mem1)):
            logger.warning("clean duplex run diverged in round %d; "
                           "prefix memoization disabled for this pair",
                           rounds)
            return None
        snaps.append((machines[0].snapshot(), machines[1].snapshot()))
        instret[0].append(machines[0].instret)
        instret[1].append(machines[1].instret)
        if machines[0].halted and machines[1].halted:
            complete = True
            break
    logger.debug("clean prefix built: %d rounds, complete=%s",
                 rounds, complete)
    return CleanPrefix(
        snaps=tuple(snaps),
        instret=(tuple(instret[0]), tuple(instret[1])),
        halt_round=(halt_round[0], halt_round[1]),
        total_rounds=rounds,
        complete=complete,
        final_output=tuple(machines[0].output),
        round_instructions=round_instructions,
        memory_words=memory_words,
        max_rounds=max_rounds,
    )


# Per-process memo: fingerprint -> CleanPrefix | None (None memoizes a
# misbehaving clean run so it is not rebuilt per trial block).
_MEMO: dict[str, Optional[CleanPrefix]] = {}


def get_clean_prefix(version_a: DiverseVersion, version_b: DiverseVersion,
                     round_instructions: int, memory_words: int,
                     max_rounds: int) -> Optional[CleanPrefix]:
    """The memoized clean prefix for this configuration (or ``None``).

    Returns ``None`` when the memo is disabled via ``VDS_PREFIX_CACHE=0``
    or the clean run is unusable; callers then execute trials in full.
    """
    if not prefix_cache_enabled():
        return None
    from repro.parallel.cache import execution_prefix_fingerprint

    key = execution_prefix_fingerprint(version_a, version_b,
                                       round_instructions, memory_words,
                                       max_rounds)
    if key in _MEMO:
        return _MEMO[key]
    prefix = build_clean_prefix(version_a, version_b, round_instructions,
                                memory_words, max_rounds)
    while len(_MEMO) >= _memo_limit():
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[key] = prefix
    return prefix


def clear_prefix_memo() -> None:
    """Drop every memoized prefix (tests, or after config changes)."""
    _MEMO.clear()
