"""Fault taxonomy.

A :class:`FaultSpec` is a *plan*: what to corrupt, where, and when (at
which retired-instruction count within the victim's execution).  Specs are
pure data so campaigns can log, replay and compare them across recovery
schemes with common random numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import FaultModelError
from repro.isa.instructions import REGISTER_COUNT, WORD_BITS

__all__ = ["FaultKind", "FaultSpec", "FaultOutcome"]


class FaultKind(Enum):
    """The fault classes of the paper's model."""

    TRANSIENT_REGISTER = "transient-register"  #: bit flip in a register
    TRANSIENT_MEMORY = "transient-memory"      #: bit flip in private memory
    TRANSIENT_PC = "transient-pc"              #: bit flip in the pc
    PERMANENT_ALU = "permanent-alu"            #: stuck-at bit in an ALU result
    PERMANENT_MEMORY = "permanent-memory"      #: stuck-at bit on memory writes
    CRASH = "crash"                            #: version stops (trap)
    PROCESSOR_STOP = "processor-stop"          #: whole processor stops

    @property
    def is_transient(self) -> bool:
        return self in (FaultKind.TRANSIENT_REGISTER,
                        FaultKind.TRANSIENT_MEMORY,
                        FaultKind.TRANSIENT_PC)

    @property
    def is_permanent(self) -> bool:
        return self in (FaultKind.PERMANENT_ALU, FaultKind.PERMANENT_MEMORY)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """A concrete fault to inject.

    Attributes
    ----------
    kind:
        Fault class.
    at_instruction:
        Retired-instruction count of the victim at which the fault strikes
        (transients/crash) or from which the permanent fault is active.
    register:
        Victim register (TRANSIENT_REGISTER).
    address:
        Victim memory word (TRANSIENT_MEMORY) — interpreted modulo the
        victim's memory size.
    bit:
        Bit index to flip / stick.
    stuck_value:
        0 or 1 — the value a permanent fault forces (stuck-at).
    """

    kind: FaultKind
    at_instruction: int = 0
    register: Optional[int] = None
    address: Optional[int] = None
    bit: int = 0
    stuck_value: int = 0

    def __post_init__(self) -> None:
        if self.at_instruction < 0:
            raise FaultModelError("at_instruction must be >= 0")
        if not (0 <= self.bit < WORD_BITS):
            raise FaultModelError(f"bit must lie in [0, {WORD_BITS}), got {self.bit}")
        if self.stuck_value not in (0, 1):
            raise FaultModelError("stuck_value must be 0 or 1")
        if self.kind is FaultKind.TRANSIENT_REGISTER:
            if self.register is None or not (0 <= self.register < REGISTER_COUNT):
                raise FaultModelError(
                    f"TRANSIENT_REGISTER needs register in [0, {REGISTER_COUNT})"
                )
        if self.kind is FaultKind.TRANSIENT_MEMORY and self.address is None:
            raise FaultModelError("TRANSIENT_MEMORY needs an address")
        if self.kind is FaultKind.PERMANENT_MEMORY and self.address is None:
            raise FaultModelError("PERMANENT_MEMORY needs an address")

    def describe(self) -> str:
        """One-line human-readable description for campaign logs."""
        loc = ""
        if self.register is not None:
            loc = f" r{self.register}"
        elif self.address is not None:
            loc = f" mem[{self.address}]"
        extra = ""
        if self.kind.is_permanent:
            extra = f" stuck-at-{self.stuck_value}"
        return (f"{self.kind.value}{loc} bit {self.bit}{extra} "
                f"@instr {self.at_instruction}")


class FaultOutcome(Enum):
    """Classification of one injection trial (campaign terminology).

    ``DETECTED_COMPARISON``
        the duplex state comparison caught a mismatch (the paper's primary
        detection mechanism);
    ``DETECTED_TRAP``
        hardware/OS protection trapped first (access violation, crash) —
        "signaled as a fault" (§2.1);
    ``SILENT_CORRUPTION``
        both versions completed with *equal but wrong* results — the fault
        defeated the diversity assumption (should be rare);
    ``BENIGN``
        the fault was masked; results correct;
    ``TIMEOUT``
        the trial hit the campaign's round limit without halting or
        diverging — the runaway guard fired.  Counted separately so a
        truncated trial is never folded into a detection or coverage
        figure it did not earn.
    """

    DETECTED_COMPARISON = "detected-comparison"
    DETECTED_TRAP = "detected-trap"
    SILENT_CORRUPTION = "silent-corruption"
    BENIGN = "benign"
    TIMEOUT = "timeout"

    @property
    def is_detected(self) -> bool:
        return self in (FaultOutcome.DETECTED_COMPARISON,
                        FaultOutcome.DETECTED_TRAP)
