"""Applying fault specifications to a running machine.

Transients mutate state once; permanents install hooks that corrupt every
subsequent use of the faulty unit.  Because diverse versions exercise the
hardware differently (different opcode mix, different memory images), the
*same* permanent hook produces different state perturbations across
versions — the mechanism that lets a VDS detect permanent faults at all.
"""

from __future__ import annotations

from repro.errors import FaultModelError, MachineFault
from repro.faults.models import FaultKind, FaultSpec
from repro.isa.instructions import Opcode, WORD_MASK
from repro.isa.machine import Machine

__all__ = ["apply_transient", "install_permanent", "clear_permanent"]


def apply_transient(machine: Machine, spec: FaultSpec) -> None:
    """Apply a transient (or crash) fault to ``machine`` right now."""
    if spec.kind is FaultKind.TRANSIENT_REGISTER:
        machine.flip_register_bit(spec.register, spec.bit)
    elif spec.kind is FaultKind.TRANSIENT_MEMORY:
        machine.flip_memory_bit(spec.address % len(machine.memory), spec.bit)
    elif spec.kind is FaultKind.TRANSIENT_PC:
        machine.flip_pc_bit(spec.bit)
    elif spec.kind is FaultKind.CRASH:
        raise MachineFault(f"{machine.name}: injected crash fault",
                           kind="crash", pc=machine.pc)
    elif spec.kind is FaultKind.PROCESSOR_STOP:
        raise MachineFault(f"{machine.name}: injected processor stop",
                           kind="processor-stop", pc=machine.pc)
    else:
        raise FaultModelError(
            f"{spec.kind} is not a transient fault; use install_permanent()"
        )


def install_permanent(machine: Machine, spec: FaultSpec) -> None:
    """Install a permanent stuck-at fault hook on ``machine``."""
    mask = 1 << spec.bit

    if spec.kind is FaultKind.PERMANENT_ALU:
        def alu_stuck(op: Opcode, result: int) -> int:
            if spec.stuck_value:
                return (result | mask) & WORD_MASK
            return result & ~mask & WORD_MASK

        machine.alu_fault = alu_stuck
    elif spec.kind is FaultKind.PERMANENT_MEMORY:
        victim = spec.address % len(machine.memory)

        def store_stuck(address: int, value: int) -> int:
            if address != victim:
                return value
            if spec.stuck_value:
                return (value | mask) & WORD_MASK
            return value & ~mask & WORD_MASK

        machine.store_fault = store_stuck
        # A stuck cell corrupts its current content immediately as well.
        current = int(machine.memory[victim])
        machine.write_memory_word(
            victim,
            ((current | mask) if spec.stuck_value else (current & ~mask))
            & WORD_MASK,
        )
    else:
        raise FaultModelError(
            f"{spec.kind} is not a permanent fault; use apply_transient()"
        )


def clear_permanent(machine: Machine) -> None:
    """Remove permanent-fault hooks (models repair / fault-free hardware)."""
    machine.alu_fault = None
    machine.store_fault = None
