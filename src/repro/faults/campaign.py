"""End-to-end fault-injection campaigns on duplex version pairs.

A *trial* runs two (diverse) versions round-by-round at the ISA level —
each round is a fixed instruction budget, after which the canonical states
are compared, exactly the paper's detection loop — injects one fault into
the configured victim, and classifies the outcome
(:class:`~repro.faults.models.FaultOutcome`).

Permanent faults are installed on *both* machines (they share the
processor); this is where diversity earns its keep: with diverse versions
the common stuck-at perturbs the two states differently and the comparison
fires, while with two identical copies it corrupts both states identically
and slips through — the contrast measured by experiment COV-1.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.diversity.generator import DiverseVersion
from repro.errors import FaultModelError, MachineFault
from repro.faults.effects import apply_transient, install_permanent
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultOutcome, FaultSpec
from repro.isa.compiler import default_backend
from repro.isa.machine import Machine
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, active_or_none
from repro.sim.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.prefix import CleanPrefix
    from repro.parallel.cache import CampaignCache

__all__ = ["DuplexTrialResult", "CampaignResult", "run_duplex_trial",
           "run_trial_block", "run_campaign", "default_injector",
           "record_trial_metrics", "record_block_metrics",
           "record_interpreter_metric"]

logger = logging.getLogger(__name__)

#: Hard cap on rounds per trial (runaway guard for pc-flip loops).
_MAX_ROUNDS = 4000


@dataclass(frozen=True)
class DuplexTrialResult:
    """Outcome of one injection trial."""

    spec: FaultSpec
    victim: int                   #: 1-based victim version index
    outcome: FaultOutcome
    injected_round: Optional[int]  #: round during which the fault struck
    detected_round: Optional[int]  #: round at which detection happened
    rounds_executed: int

    @property
    def detection_latency(self) -> Optional[int]:
        """Rounds from injection to detection (None if not applicable)."""
        if self.injected_round is None or self.detected_round is None:
            return None
        return self.detected_round - self.injected_round


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    trials: list[DuplexTrialResult] = field(default_factory=list)

    def count(self, outcome: FaultOutcome) -> int:
        return sum(t.outcome is outcome for t in self.trials)

    @property
    def n(self) -> int:
        return len(self.trials)

    @property
    def coverage(self) -> float:
        """Detected / (detected + silent corruptions).

        Benign faults are excluded: a masked fault needs no detection.
        """
        detected = sum(t.outcome.is_detected for t in self.trials)
        silent = self.count(FaultOutcome.SILENT_CORRUPTION)
        total = detected + silent
        return detected / total if total else 1.0

    def mean_detection_latency(self) -> Optional[float]:
        """Mean rounds-to-detection over comparison-detected trials."""
        lat = [t.detection_latency for t in self.trials
               if t.outcome is FaultOutcome.DETECTED_COMPARISON
               and t.detection_latency is not None]
        return float(np.mean(lat)) if lat else None

    @property
    def timeouts(self) -> int:
        """Trials truncated by the runaway guard (round limit reached)."""
        return self.count(FaultOutcome.TIMEOUT)

    def by_kind(self) -> dict[FaultKind, dict[FaultOutcome, int]]:
        """Outcome histogram per fault class."""
        out: dict[FaultKind, dict[FaultOutcome, int]] = {}
        for t in self.trials:
            bucket = out.setdefault(t.spec.kind, {})
            bucket[t.outcome] = bucket.get(t.outcome, 0) + 1
        return out

    def outcome_counts(self) -> dict[FaultOutcome, int]:
        """Trial count per outcome (zero-count outcomes included)."""
        return {o: self.count(o) for o in FaultOutcome}

    def detection_latencies(self) -> list[int]:
        """Latencies of all comparison-detected trials, in trial order."""
        return [t.detection_latency for t in self.trials
                if t.outcome is FaultOutcome.DETECTED_COMPARISON
                and t.detection_latency is not None]

    def digest(self) -> str:
        """Content digest of the exact trial sequence (hex SHA-256).

        Two results digest equally iff their trials are equal *in
        order*, so this is the cheap spelling of the bit-identity
        contract: a resumed or fault-recovered campaign must reproduce
        the digest of the uninterrupted run.  Recorded per shard in the
        campaign journal's ledger and for the whole campaign in its
        ``complete`` record.
        """
        import hashlib

        h = hashlib.sha256()
        for t in self.trials:
            s = t.spec
            h.update(repr((
                s.kind.value, s.at_instruction, s.register, s.address,
                s.bit, s.stuck_value, t.victim, t.outcome.value,
                t.injected_round, t.detected_round, t.rounds_executed,
            )).encode("ascii"))
        return h.hexdigest()

    @classmethod
    def merge(cls, parts: Iterable["CampaignResult"]) -> "CampaignResult":
        """Concatenate shard results in the given order.

        Merging is pure concatenation — trials keep their order within
        each shard, and shards keep the order of ``parts`` — so merging
        the per-shard results of a sharded campaign reproduces the trial
        sequence of a serial run exactly.  Overlapping shards are *not*
        deduplicated; the caller owns the shard plan.
        """
        merged = cls()
        for part in parts:
            merged.trials.extend(part.trials)
        return merged


def _duplex_mismatch(m0: Machine, m1: Machine,
                     mask0: int, mask1: int) -> bool:
    """End-of-round state comparison across (possibly encoded) versions.

    Rounds end at ``sync`` instructions, which diverse versions reach at
    the same *logical* points, so outputs, halt status and the decoded
    memory images are directly comparable.  ``mask0``/``mask1`` are the
    versions' encoded-execution masks (0 for plaintext versions).

    Incremental comparison: once a full comparison has found the decoded
    images equal, only words *written since* (each machine's
    ``dirty_words``) can differ at the next round boundary, so that is all
    the later comparisons look at.  A machine with unknown dirty state
    (fresh construction, post-restore, or direct external mutation) forces
    the full path, which on success re-establishes the baseline.
    """
    if m0.output != m1.output:
        return True
    if m0.halted != m1.halted:
        return True
    d0, d1 = m0.dirty_words, m1.dirty_words
    if d0 is None or d1 is None:
        mem0 = m0.memory ^ np.uint32(mask0)
        mem1 = m1.memory ^ np.uint32(mask1)
        if not np.array_equal(mem0, mem1):
            return True
        m0.dirty_words = set()
        m1.dirty_words = set()
        return False
    touched = d0 | d1
    if touched:
        mem0, mem1 = m0.memory, m1.memory
        if len(touched) <= 64:
            # Typical rounds touch a handful of words: scalar reads beat
            # building index arrays for numpy fancy indexing.
            for w in touched:
                if (int(mem0[w]) ^ mask0) != (int(mem1[w]) ^ mask1):
                    return True
        else:
            idx = np.fromiter(touched, dtype=np.intp, count=len(touched))
            if not np.array_equal(mem0[idx] ^ np.uint32(mask0),
                                  mem1[idx] ^ np.uint32(mask1)):
                return True
        d0.clear()
        d1.clear()
    return False


def _run_round_with_injection(machine: Machine, budget: int,
                              spec: Optional[FaultSpec]
                              ) -> tuple[Optional[FaultSpec], bool]:
    """Run one sync-delimited round; strike mid-round if the instant falls
    inside it.  Returns ``(pending_spec, hung)`` — ``hung`` is True when
    the round exhausted its instruction budget without reaching a ``sync``
    or ``halt`` (a corrupted loop that will never converge; a real system's
    watchdog timer fires here).
    """
    if spec is None or spec.kind.is_permanent:
        r = machine.run_round(budget)
        return spec, r.budget_exhausted
    remaining_to_strike = spec.at_instruction - machine.instret
    if remaining_to_strike > 0:
        r = machine.run(min(remaining_to_strike, budget), stop_at_sync=True)
        if r.hit_sync:
            return spec, False  # the strike instant lies in a later round
        budget -= r.executed
        if budget <= 0:
            return spec, True
    if machine.halted:
        return None, False  # program finished before the strike: no effect
    apply_transient(machine, spec)  # may raise MachineFault (crash)
    r = machine.run_round(budget)
    return None, r.budget_exhausted


def run_duplex_trial(version_a: DiverseVersion, version_b: DiverseVersion,
                     spec: FaultSpec, victim: int,
                     oracle_output: Sequence[int],
                     round_instructions: int = 2_000,
                     memory_words: int = 256,
                     max_rounds: int = _MAX_ROUNDS,
                     *,
                     prefix: Optional["CleanPrefix"] = None
                     ) -> DuplexTrialResult:
    """Run one duplex execution with one injected fault.

    Parameters
    ----------
    version_a, version_b:
        The two versions under test (version_a is "version 1").
    spec:
        The fault plan.
    victim:
        1 or 2 — which version the transient/crash fault strikes.
        Permanent and processor-stop faults hit the shared hardware.
    oracle_output:
        The correct output stream (for silent-corruption classification).
    round_instructions:
        Safety cap on instructions per round; rounds normally end at the
        program's ``sync`` boundaries ("a well defined portion of process
        activity"), which diverse versions reach at the same logical points.
    max_rounds:
        Runaway guard: a trial still running after this many rounds is
        classified :attr:`~repro.faults.models.FaultOutcome.TIMEOUT`.
    prefix:
        Optional memoized fault-free execution of this exact
        configuration (:mod:`repro.faults.prefix`).  Trials whose fault
        strikes in round *j* restore both machines at the end of round
        *j*−1 instead of re-executing the clean prefix; trials whose
        fault never strikes are classified without executing at all.
        Results are bit-identical with and without it.
    """
    if victim not in (1, 2):
        raise FaultModelError(f"victim must be 1 or 2, got {victim}")
    if round_instructions < 1:
        raise FaultModelError("round_instructions must be >= 1")
    if max_rounds < 0:
        raise FaultModelError("max_rounds must be >= 0")

    use_prefix = (
        prefix is not None
        and not spec.kind.is_permanent
        and spec.kind is not FaultKind.PROCESSOR_STOP
        and prefix.matches(round_instructions, memory_words, max_rounds)
    )
    if use_prefix:
        strike = prefix.strike_round(victim, spec.at_instruction)
        if strike is None and prefix.complete:
            # The victim halts before the strike instant: the fault never
            # fires.  The full loop would clear it (no effect) in the
            # victim's halting round and run the clean execution to the
            # end — all of which the prefix already knows.
            outcome = (FaultOutcome.BENIGN
                       if prefix.final_output == tuple(oracle_output)
                       else FaultOutcome.SILENT_CORRUPTION)
            return DuplexTrialResult(spec, victim, outcome,
                                     prefix.halt_round[victim - 1], None,
                                     prefix.total_rounds)

    masks = [version_a.encoding_mask or 0, version_b.encoding_mask or 0]
    # Program/input tuples are passed as-is: Machine copies what it needs,
    # and the stable tuples let repeat constructions reuse the compiled
    # program via the identity cache.
    machines = [
        Machine(version_a.program, memory_words=memory_words,
                inputs=version_a.inputs, name="V1", fill=masks[0]),
        Machine(version_b.program, memory_words=memory_words,
                inputs=version_b.inputs, name="V2", fill=masks[1]),
    ]
    if spec.kind.is_permanent:
        for m in machines:
            install_permanent(m, spec)
    pending: list[Optional[FaultSpec]] = [None, None]
    if spec.kind is FaultKind.PROCESSOR_STOP:
        pending[0] = spec  # strikes whichever side reaches the instant first
        pending[1] = spec
    elif not spec.kind.is_permanent:
        pending[victim - 1] = spec

    injected_round: Optional[int] = 1 if spec.kind.is_permanent else None
    rounds = 0
    if use_prefix and strike is not None and strike >= 2:
        # Fast-forward: rounds 1 … strike−1 are the memoized clean
        # execution — adopt their end state and resume the loop there.
        s0, s1 = prefix.snaps[strike - 2]
        machines[0].restore(s0)
        machines[1].restore(s1)
        rounds = strike - 1
    while rounds < max_rounds:
        rounds += 1
        for idx, m in enumerate(machines):
            if m.halted:
                continue
            before = pending[idx]
            try:
                pending[idx], hung = _run_round_with_injection(
                    m, round_instructions, pending[idx]
                )
            except MachineFault:
                if before is not None and injected_round is None:
                    injected_round = rounds
                return DuplexTrialResult(
                    spec, victim, FaultOutcome.DETECTED_TRAP,
                    injected_round if injected_round is not None else rounds,
                    rounds, rounds,
                )
            if before is not None and pending[idx] is None \
                    and injected_round is None:
                injected_round = rounds
            if hung:
                # Watchdog: the version stopped making round progress.
                return DuplexTrialResult(
                    spec, victim, FaultOutcome.DETECTED_TRAP,
                    injected_round if injected_round is not None else rounds,
                    rounds, rounds,
                )
        # End-of-round state comparison (the VDS detection mechanism).
        if _duplex_mismatch(machines[0], machines[1], masks[0], masks[1]):
            return DuplexTrialResult(
                spec, victim, FaultOutcome.DETECTED_COMPARISON,
                injected_round, rounds, rounds,
            )
        if machines[0].halted and machines[1].halted:
            break
    else:
        # The runaway guard fired: the trial reached the round limit
        # without halting or diverging.  Keep it distinct from the
        # detection outcomes — a truncated trial proves nothing about
        # coverage either way.
        return DuplexTrialResult(spec, victim, FaultOutcome.TIMEOUT,
                                 injected_round, None, rounds)

    outputs = tuple(machines[0].output)
    if outputs == tuple(oracle_output):
        outcome = FaultOutcome.BENIGN
    else:
        outcome = FaultOutcome.SILENT_CORRUPTION
    return DuplexTrialResult(spec, victim, outcome, injected_round, None,
                             rounds)


def record_trial_metrics(metrics: MetricsRegistry,
                         trial: DuplexTrialResult) -> None:
    """Fold one trial into campaign counters/histograms.

    The counter names are the observability contract checked by CI: the
    merged ``campaign_outcome_total`` variants always equal
    :meth:`CampaignResult.outcome_counts` of the merged result, no
    matter how trials were sharded, cached, or distributed.
    """
    metrics.counter("campaign_trials_total").inc()
    metrics.counter("campaign_outcome_total",
                    outcome=trial.outcome.value).inc()
    metrics.histogram("campaign_trial_rounds").observe(trial.rounds_executed)
    if (trial.outcome is FaultOutcome.DETECTED_COMPARISON
            and trial.detection_latency is not None):
        metrics.histogram("campaign_detection_latency_rounds"
                          ).observe(trial.detection_latency)


def record_interpreter_metric(metrics: MetricsRegistry) -> None:
    """Label the campaign's metrics with the active interpreter backend.

    An info-style gauge (value 1, backend in the ``vds_interpreter``
    label) so merged registries and exported traces show which
    interpreter produced the numbers without disturbing the
    ``campaign_outcome_total`` contract.
    """
    metrics.gauge("campaign_interpreter_info",
                  vds_interpreter=default_backend()).set(1)


def record_block_metrics(metrics: MetricsRegistry,
                         result: CampaignResult) -> None:
    """Replay a finished block's trials into the registry.

    Used for cache-hit shards, whose trials were counted in some past
    process: replaying keeps the merged counters exact.
    """
    for trial in result.trials:
        record_trial_metrics(metrics, trial)


def _end_trial_span(tracer: Tracer, span: int, index: int,
                    trial: DuplexTrialResult) -> None:
    """Close a ``campaign.trial`` span with the trial's outcome.

    Virtual time is the campaign-global trial index, so trial spans are
    monotonic within a campaign across shards and workers.  The
    injection point lands inside the span (the strike round is only
    known post-hoc) and carries the fault's target — strike instant,
    register/address, bit — so forensic analysis can name the injection
    site straight from the trace.
    """
    if trial.injected_round is not None:
        spec = trial.spec
        target: dict = {"at_instruction": spec.at_instruction,
                        "bit": spec.bit}
        if spec.register is not None:
            target["register"] = spec.register
        if spec.address is not None:
            target["address"] = spec.address
        tracer.point("campaign.injection", vt=index,
                     round=trial.injected_round, **target)
    tracer.end(span, vt=index, outcome=trial.outcome.value,
               rounds=trial.rounds_executed,
               detected_round=trial.detected_round,
               detection_latency=trial.detection_latency)


def default_injector(version_a: DiverseVersion, rng: np.random.Generator,
                     memory_words: int = 256) -> FaultInjector:
    """The default injector: strike instants span version 1's fault-free
    execution length, so faults land during the computation rather than
    after it.

    Public so callers that need the campaign fingerprint *before*
    running (the CLI computes run ids and journal manifests from it)
    build the exact injector :func:`run_campaign` would.
    """
    probe = Machine(list(version_a.program), memory_words=memory_words,
                    inputs=list(version_a.inputs), name="probe",
                    fill=version_a.encoding_mask or 0)
    probe.run_to_halt()
    return FaultInjector(rng, memory_words=memory_words,
                         max_instruction=max(probe.instret, 1))


_default_injector = default_injector


def run_trial_block(version_a: DiverseVersion, version_b: DiverseVersion,
                    oracle_output: Sequence[int],
                    seeds: Sequence[np.random.SeedSequence],
                    injector: FaultInjector,
                    round_instructions: int = 2_000,
                    memory_words: int = 256,
                    max_rounds: int = _MAX_ROUNDS,
                    *,
                    tracer: Optional[Tracer] = None,
                    metrics: Optional[MetricsRegistry] = None,
                    first_trial_index: int = 0,
                    prefix: Optional["CleanPrefix"] = None,
                    ) -> CampaignResult:
    """Run one chunk of trials, one per-trial seed each.

    Every trial draws its fault plan and victim from a generator seeded
    by its own :class:`~numpy.random.SeedSequence`, so a block's results
    depend only on the seeds it is given — never on which worker runs it
    or which trials precede it.  ``injector`` acts as a *template*: its
    mix and bounds are kept, its generator is replaced per trial.

    Observability is explicit here (no global lookup): the parallel
    executor hands each worker its own ``tracer``/``metrics`` and
    ``first_trial_index`` (the shard's campaign-global base index), so
    per-shard telemetry survives the process pool and merges exactly.
    Both default to ``None`` — the disabled fast path costs one ``is
    None`` check per trial and cannot perturb results.

    ``prefix`` is looked up in the per-process memo when not supplied;
    pass :data:`False`-y sentinel semantics via ``VDS_PREFIX_CACHE=0`` to
    force full execution.
    """
    if prefix is None:
        from repro.faults.prefix import get_clean_prefix

        prefix = get_clean_prefix(version_a, version_b, round_instructions,
                                  memory_words, max_rounds)
    result = CampaignResult()
    for offset, seed in enumerate(seeds):
        trial_rng = np.random.default_rng(seed)
        trial_injector = injector.with_rng(trial_rng)
        spec = trial_injector.draw()
        victim = int(trial_rng.integers(1, 3))
        if tracer is not None:
            index = first_trial_index + offset
            span = tracer.start("campaign.trial", vt=index,
                                kind=spec.kind.value, victim=victim)
        trial = run_duplex_trial(version_a, version_b, spec, victim,
                                 oracle_output, round_instructions,
                                 memory_words, max_rounds, prefix=prefix)
        if tracer is not None:
            _end_trial_span(tracer, span, index, trial)
        if metrics is not None:
            record_trial_metrics(metrics, trial)
        result.trials.append(trial)
    return result


def run_campaign(version_a: DiverseVersion, version_b: DiverseVersion,
                 oracle_output: Sequence[int], n_trials: int,
                 rng: SeedLike,
                 injector: Optional[FaultInjector] = None,
                 round_instructions: int = 2_000,
                 memory_words: int = 256,
                 *,
                 n_workers: Optional[int] = None,
                 shard_size: Optional[int] = None,
                 cache: Optional["CampaignCache"] = None,
                 max_rounds: int = _MAX_ROUNDS,
                 journal=None,
                 fault_tolerance=None) -> CampaignResult:
    """Run ``n_trials`` independent single-fault trials.

    When no injector is given, one is built whose strike instants span
    version 1's actual fault-free execution length, so faults land during
    the computation rather than after it.

    Parameters
    ----------
    rng:
        Master randomness source.  Passing an ``int`` or
        :class:`~numpy.random.SeedSequence` selects the *sharded* mode:
        per-trial generators are derived with ``SeedSequence.spawn``, so
        the aggregate result is bit-identical for every ``n_workers``
        value.  A bare :class:`~numpy.random.Generator` with the default
        ``n_workers=None`` keeps the legacy serial draw order.
    n_workers:
        Worker processes for the sharded mode.  ``None`` means serial;
        any value (including 1) opts into the sharded seed derivation.
    shard_size:
        Trials per shard (default chosen by the parallel layer).  The
        shard plan depends only on ``n_trials`` and ``shard_size`` — not
        on ``n_workers`` — so cached shards stay valid across runs with
        different worker counts.
    cache:
        Optional :class:`repro.parallel.cache.CampaignCache`; hits skip
        recomputation of whole shards.  Using a cache implies the
        sharded mode.
    max_rounds:
        Runaway guard passed to every trial.
    journal:
        Optional :class:`repro.parallel.journal.CampaignJournal`; each
        completed shard is recorded in its ledger so an interrupted run
        can be resumed.  Using a journal implies the sharded mode.
    fault_tolerance:
        Optional :class:`repro.parallel.executor.FaultTolerance` retry
        policy; defaults to the ``VDS_SHARD_*`` environment knobs.
    """
    if n_trials < 1:
        raise FaultModelError(f"n_trials must be >= 1, got {n_trials}")
    legacy = (isinstance(rng, np.random.Generator) and n_workers is None
              and cache is None and journal is None)
    if legacy:
        tracer = active_or_none()
        metrics = get_registry()
        logger.debug("serial campaign: %d trials, round budget %d",
                     n_trials, round_instructions)
        if injector is None:
            injector = _default_injector(version_a, rng, memory_words)
        from repro.faults.prefix import get_clean_prefix

        prefix = get_clean_prefix(version_a, version_b, round_instructions,
                                  memory_words, max_rounds)
        if tracer is not None:
            campaign_span = tracer.start("campaign", vt=0,
                                         n_trials=n_trials, mode="serial",
                                         vds_interpreter=default_backend())
        if metrics is not None:
            record_interpreter_metric(metrics)
        result = CampaignResult()
        for index in range(n_trials):
            spec = injector.draw()
            victim = int(rng.integers(1, 3))
            if tracer is not None:
                span = tracer.start("campaign.trial", vt=index,
                                    kind=spec.kind.value, victim=victim)
            trial = run_duplex_trial(version_a, version_b, spec, victim,
                                     oracle_output, round_instructions,
                                     memory_words, max_rounds, prefix=prefix)
            if tracer is not None:
                _end_trial_span(tracer, span, index, trial)
            if metrics is not None:
                record_trial_metrics(metrics, trial)
            result.trials.append(trial)
        if tracer is not None:
            tracer.end(campaign_span, vt=n_trials)
        logger.info("serial campaign done: %d trials, coverage %.3f",
                    result.n, result.coverage)
        return result

    from repro.parallel.executor import run_sharded_campaign

    if injector is None:
        # The template generator is never drawn from in sharded mode.
        injector = _default_injector(version_a, np.random.default_rng(0),
                                     memory_words)
    return run_sharded_campaign(
        version_a, version_b, oracle_output, n_trials, rng, injector,
        round_instructions=round_instructions, memory_words=memory_words,
        n_workers=n_workers, shard_size=shard_size, cache=cache,
        max_rounds=max_rounds, journal=journal,
        fault_tolerance=fault_tolerance,
    )
