"""repro.faults — fault models, arrival processes, injection campaigns.

Implements the paper's fault model (§2.1): "Transient and permanent faults
are assumed. … transient faults … can be modeled as bit flips in registers,
and as such only directly affect one version.  … For permanent faults,
diversity is used to employ the hardware in different ways and to make it
unlikely that a single fault shows the same effect on two versions.  A
fault is able to stop a version and also to stop the entire processor
including all versions."

* :mod:`repro.faults.models` — the fault taxonomy (:class:`FaultKind`,
  :class:`FaultSpec`);
* :mod:`repro.faults.effects` — applying a fault to a running
  :class:`~repro.isa.machine.Machine`;
* :mod:`repro.faults.rates` — Poisson/Weibull arrival processes and
  radiation-environment presets (ground … deep space, after the paper's
  motivation that "in outer space transient faults are much more frequent
  due to radiation");
* :mod:`repro.faults.injector` — drawing random fault specifications;
* :mod:`repro.faults.campaign` — end-to-end injection campaigns over
  diverse version pairs, with outcome classification and coverage stats;
* :mod:`repro.faults.prefix` — memoized fault-free prefixes so trials
  execute only their perturbed suffix.
"""

from repro.faults.models import FaultKind, FaultSpec, FaultOutcome
from repro.faults.effects import apply_transient, install_permanent, clear_permanent
from repro.faults.rates import (
    ArrivalProcess,
    PoissonArrivals,
    WeibullArrivals,
    Environment,
    ENVIRONMENTS,
)
from repro.faults.injector import FaultInjector
from repro.faults.campaign import (
    DuplexTrialResult,
    CampaignResult,
    run_duplex_trial,
    run_trial_block,
    run_campaign,
)
from repro.faults.prefix import (
    CleanPrefix,
    build_clean_prefix,
    clear_prefix_memo,
    get_clean_prefix,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultOutcome",
    "apply_transient",
    "install_permanent",
    "clear_permanent",
    "ArrivalProcess",
    "PoissonArrivals",
    "WeibullArrivals",
    "Environment",
    "ENVIRONMENTS",
    "FaultInjector",
    "DuplexTrialResult",
    "CampaignResult",
    "run_duplex_trial",
    "run_trial_block",
    "run_campaign",
    "CleanPrefix",
    "build_clean_prefix",
    "clear_prefix_memo",
    "get_clean_prefix",
]
