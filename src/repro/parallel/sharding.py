"""Worker resolution and shard planning.

A *shard* is a contiguous block of trial indices.  The plan is a pure
function of ``(n_trials, shard_size)`` — deliberately independent of the
worker count — so the same campaign always produces the same shards, and
a result cache filled at ``n_workers=8`` is fully reusable at
``n_workers=2`` (or serially).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_SHARD_SIZE", "plan_shards", "resolve_workers", "shard_id"]

#: Default trials per shard: small enough to load-balance a few hundred
#: trials over 8+ workers, large enough to amortise per-shard overhead.
DEFAULT_SHARD_SIZE = 25


def resolve_workers(workers: Union[int, str, None] = None) -> int:
    """Normalise a worker-count request to a positive integer.

    ``None`` means serial (1 worker); ``"auto"`` means one worker per
    available CPU; an integer (or integer string) passes through after
    validation.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, (int, str)):
        raise ConfigurationError(
            f"workers must be an int, 'auto' or None, got {workers!r}"
        )
    try:
        count = int(workers)
    except ValueError:
        raise ConfigurationError(
            f"workers must be an int, 'auto' or None, got {workers!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {count}")
    return count


def shard_id(start: int, count: int) -> str:
    """Canonical name of the shard ``(start, count)``.

    The single spelling shared by the on-disk cache (file names), the
    campaign journal (ledger entries), and log/trace output, so a shard
    can be followed across all three by one string.
    """
    return f"{start:06d}-{count:05d}"


def plan_shards(
    n_trials: int,
    shard_size: Optional[int] = None,
) -> list[tuple[int, int]]:
    """Chunk ``n_trials`` into contiguous ``(start, count)`` shards."""
    if n_trials < 0:
        raise ConfigurationError(f"n_trials must be >= 0, got {n_trials}")
    size = DEFAULT_SHARD_SIZE if shard_size is None else int(shard_size)
    if size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {size}")
    return [(start, min(size, n_trials - start)) for start in range(0, n_trials, size)]
