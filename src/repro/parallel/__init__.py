"""repro.parallel — sharded, reproducible campaign execution.

Monte-Carlo fault-injection campaigns and experiment trial loops are
embarrassingly parallel, but naive parallelisation destroys the
bit-exact reproducibility the validation experiments (VAL-1/VAL-2,
COV-1) rest on.  This package keeps both:

* every trial draws from its own generator, derived from the master
  seed via ``numpy.random.SeedSequence.spawn`` (:mod:`repro.sim.rng`),
  so results depend only on ``(master seed, trial index)``;
* trials are chunked into *shards* whose boundaries depend only on the
  trial count — never on the worker count — and shard results are
  merged in trial order (:meth:`~repro.faults.campaign.CampaignResult.merge`);
* an on-disk cache keyed by ``(campaign fingerprint, seed, code
  version)`` lets re-runs skip shards that are already computed.

Consequently ``run_campaign(..., n_workers=1)`` and ``n_workers=8``
return identical aggregate results for the same master seed.
"""

from repro.parallel.cache import CampaignCache, campaign_fingerprint
from repro.parallel.executor import (
    FaultTolerance,
    parallel_map,
    run_sharded_campaign,
)
from repro.parallel.journal import CampaignJournal, default_runs_dir
from repro.parallel.sharding import (
    DEFAULT_SHARD_SIZE,
    plan_shards,
    resolve_workers,
    shard_id,
)

__all__ = [
    "CampaignCache",
    "CampaignJournal",
    "FaultTolerance",
    "campaign_fingerprint",
    "default_runs_dir",
    "parallel_map",
    "run_sharded_campaign",
    "DEFAULT_SHARD_SIZE",
    "plan_shards",
    "resolve_workers",
    "shard_id",
]
