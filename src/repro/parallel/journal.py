"""Append-only campaign journal: crash-safe run manifests and ledgers.

A *run* is one campaign invocation identified by a run id.  Its journal
is a directory under ``results/runs/<run-id>/`` (override the root with
``VDS_RUNS_DIR``) holding exactly two files:

``manifest.json``
    The campaign's full configuration — enough for
    ``vds-repro campaign --resume <run-id>`` to rebuild the version
    pair, injector, and seed tree without any of the original flags —
    plus the campaign fingerprint that keys the shard cache.  Written
    once, atomically (temp file + rename, fsynced).

``ledger.jsonl``
    One line per *completed* shard, appended and fsynced the moment the
    shard's result is safely in the cache.  Each line is CRC-sealed:
    the record carries a ``crc`` field over its own canonical JSON
    body, so a torn tail line (the writer was killed mid-append) or a
    bit-flipped entry is detected and *skipped* — the worst corruption
    can do is force one shard to be recomputed.

The journal never stores results itself; shard payloads live in the
:class:`~repro.parallel.cache.CampaignCache` keyed by the manifest's
fingerprint.  The ledger is the executor's progress record (which
shards are done, and the CRC-sealed digest of each shard's result) and
the CLI's resume index.  Entries are idempotent: recording a shard that
is already in the ledger is a no-op, so a resumed run can simply replay
its completion events.
"""

from __future__ import annotations

import json
import logging
import os
import re
import zlib
from pathlib import Path
from typing import Any, Optional, Union

from repro._version import __version__
from repro.errors import JournalError
from repro.parallel.cache import write_file_atomic
from repro.parallel.sharding import shard_id

__all__ = [
    "JOURNAL_SCHEMA",
    "DEFAULT_RUNS_DIR",
    "CampaignJournal",
    "default_runs_dir",
    "seal_record",
    "unseal_record",
]

logger = logging.getLogger(__name__)

#: Bump when the manifest/ledger layout changes.
JOURNAL_SCHEMA = 1

#: Default journal root, relative to the working directory.
DEFAULT_RUNS_DIR = Path("results") / "runs"

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def default_runs_dir() -> Path:
    """The journal root: ``$VDS_RUNS_DIR`` or ``results/runs``."""
    return Path(os.environ.get("VDS_RUNS_DIR", DEFAULT_RUNS_DIR))


def _canonical(record: dict[str, Any]) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def seal_record(record: dict[str, Any]) -> str:
    """One CRC-sealed JSONL line (no trailing newline) for ``record``.

    The seal is a CRC-32 over the record's canonical JSON *without* the
    ``crc`` field; readers recompute it, so any single torn or flipped
    byte in the line invalidates the whole entry.
    """
    body = {k: v for k, v in record.items() if k != "crc"}
    crc = zlib.crc32(_canonical(body)) & 0xFFFFFFFF
    return json.dumps({**body, "crc": f"{crc:08x}"}, sort_keys=True,
                      separators=(",", ":"))


def unseal_record(line: str) -> Optional[dict[str, Any]]:
    """Parse and verify one sealed ledger line; ``None`` if invalid.

    Invalid covers everything a crash or bit rot can produce: a torn
    (non-JSON) tail line, a missing seal, or a CRC mismatch.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if not isinstance(crc, str):
        return None
    try:
        sealed = int(crc, 16)
    except ValueError:
        return None
    if zlib.crc32(_canonical(record)) & 0xFFFFFFFF != sealed:
        return None
    return record


class CampaignJournal:
    """The manifest + completed-shard ledger of one campaign run."""

    def __init__(self, directory: Union[str, Path], run_id: str,
                 manifest: dict[str, Any]):
        self.directory = Path(directory)
        self.run_id = run_id
        self.manifest = manifest
        #: Ledger lines that failed their CRC seal on the last read.
        self.corrupt_entries = 0
        self._recorded: set[tuple[int, int]] = set()

    # -- paths ---------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def ledger_path(self) -> Path:
        return self.directory / "ledger.jsonl"

    @property
    def fingerprint(self) -> str:
        """The campaign fingerprint this journal's shards are cached under."""
        return self.manifest["fingerprint"]

    # -- construction --------------------------------------------------------
    @classmethod
    def create(cls, run_id: str, manifest: dict[str, Any],
               root: Union[str, Path, None] = None) -> "CampaignJournal":
        """Create (or re-open) the journal for ``run_id``.

        Re-opening is the resume/idempotent-rerun path: it is allowed
        only when the existing manifest carries the *same campaign
        fingerprint* — resuming run X with the configuration of run Y
        raises :class:`~repro.errors.JournalError` instead of silently
        mixing two campaigns' shards in one ledger.
        """
        if not _RUN_ID_RE.match(run_id):
            raise JournalError(
                f"invalid run id {run_id!r} (want 1-64 chars of "
                f"[A-Za-z0-9._-], starting alphanumeric)"
            )
        directory = Path(root if root is not None else default_runs_dir())
        directory = directory / run_id
        journal = cls(directory, run_id, dict(manifest))
        journal.manifest.setdefault("schema", JOURNAL_SCHEMA)
        journal.manifest.setdefault("code_version", __version__)
        journal.manifest["run_id"] = run_id
        if "fingerprint" not in journal.manifest:
            raise JournalError("manifest must carry the campaign fingerprint")
        if journal.manifest_path.exists():
            existing = cls.open(run_id, root=root)
            if existing.fingerprint != journal.fingerprint:
                raise JournalError(
                    f"run {run_id!r} already exists with a different "
                    f"campaign fingerprint "
                    f"({existing.fingerprint[:12]}… != "
                    f"{journal.fingerprint[:12]}…); pick another --run-id "
                    f"or resume it with its own configuration"
                )
            existing._load_recorded()
            return existing
        write_file_atomic(
            journal.manifest_path,
            (json.dumps(journal.manifest, indent=2, sort_keys=True) + "\n"
             ).encode("utf-8"),
        )
        logger.info("journal created: run %s at %s", run_id, directory)
        return journal

    @classmethod
    def open(cls, run_id: str,
             root: Union[str, Path, None] = None) -> "CampaignJournal":
        """Open an existing run's journal; raises ``JournalError`` if absent
        or if its manifest is unreadable."""
        directory = Path(root if root is not None else default_runs_dir())
        directory = directory / run_id
        path = directory / "manifest.json"
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            raise JournalError(
                f"no journal for run {run_id!r} (looked at {path})"
            ) from None
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal manifest for run {run_id!r} is corrupt: {exc}"
            ) from None
        if "fingerprint" not in manifest:
            raise JournalError(
                f"journal manifest for run {run_id!r} lacks a fingerprint"
            )
        journal = cls(directory, run_id, manifest)
        journal._load_recorded()
        return journal

    # -- ledger --------------------------------------------------------------
    def _load_recorded(self) -> None:
        self._recorded = {
            (e["start"], e["count"]) for e in self.entries()
            if e.get("event") == "shard"
        }

    def entries(self) -> list[dict[str, Any]]:
        """All valid ledger records, in append order.

        Sealed-but-invalid lines (torn tail, bit flips) are counted in
        :attr:`corrupt_entries` and skipped — their shards simply do not
        exist as far as resume is concerned.
        """
        self.corrupt_entries = 0
        records: list[dict[str, Any]] = []
        try:
            text = self.ledger_path.read_text(encoding="utf-8",
                                              errors="replace")
        except OSError:
            return records
        for line in text.splitlines():
            if not line.strip():
                continue
            record = unseal_record(line)
            if record is None:
                self.corrupt_entries += 1
                logger.warning("journal %s: skipping corrupt ledger line",
                               self.run_id)
                continue
            records.append(record)
        return records

    def completed_shards(self) -> dict[tuple[int, int], dict[str, Any]]:
        """``(start, count) -> latest valid ledger record`` for every shard
        the ledger marks complete."""
        done: dict[tuple[int, int], dict[str, Any]] = {}
        for record in self.entries():
            if record.get("event") == "shard":
                done[(record["start"], record["count"])] = record
        self._recorded = set(done)
        return done

    def _append(self, record: dict[str, Any]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        line = seal_record(record) + "\n"
        with self.ledger_path.open("a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def record_shard(self, start: int, count: int, *,
                     digest: Optional[str] = None,
                     source: str = "computed") -> bool:
        """Mark the shard ``(start, count)`` complete; idempotent.

        ``digest`` is the shard result's content digest
        (:meth:`~repro.faults.campaign.CampaignResult.digest`), recorded
        so a resume can cross-check the cache entry it reloads against
        what the original run actually computed.  ``source`` records how
        this run obtained the shard (``computed`` / ``cache``).
        Returns ``True`` when a new ledger line was written.
        """
        key = (int(start), int(count))
        if key in self._recorded:
            return False
        record: dict[str, Any] = {
            "event": "shard", "start": key[0], "count": key[1],
            "shard": shard_id(*key), "source": source,
        }
        if digest is not None:
            record["digest"] = digest
        self._append(record)
        self._recorded.add(key)
        return True

    def mark_complete(self, digest: str, n_trials: int) -> None:
        """Append the run-complete record (campaign digest + trial count)."""
        self._append({"event": "complete", "digest": digest,
                      "n_trials": int(n_trials)})

    def completion(self) -> Optional[dict[str, Any]]:
        """The final ``complete`` record, or ``None`` while unfinished."""
        last = None
        for record in self.entries():
            if record.get("event") == "complete":
                last = record
        return last

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CampaignJournal(run_id={self.run_id!r}, "
                f"dir={str(self.directory)!r}, "
                f"recorded={len(self._recorded)})")
