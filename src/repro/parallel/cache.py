"""On-disk shard cache for campaign results.

Cache entries live under ``results/cache/<fingerprint>/`` where the
fingerprint digests everything that determines a campaign's outcome: the
version pair (programs, inputs, masks), the oracle, the trial count and
limits, the injector configuration, the master seed, and the package
version.  Any change to one of these — including upgrading the code —
changes the fingerprint and therefore invalidates the entry; stale
directories can simply be deleted (``rm -rf results/cache``).

Entries are pickles of :class:`~repro.faults.campaign.CampaignResult`
shards, written atomically.  A corrupt or unreadable entry is treated as
a miss and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro._version import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.diversity.generator import DiverseVersion
    from repro.faults.campaign import CampaignResult
    from repro.faults.injector import FaultInjector

__all__ = [
    "CACHE_SCHEMA",
    "CampaignCache",
    "campaign_fingerprint",
    "execution_prefix_fingerprint",
]

logger = logging.getLogger(__name__)

#: Bump when the pickle layout or trial semantics change within a release.
CACHE_SCHEMA = 1

#: Default cache root, relative to the working directory (the repo uses
#: ``results/`` for all generated artifacts).  Override with the
#: ``VDS_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = Path("results") / "cache"


def _describe_version(version: "DiverseVersion") -> list:
    return [
        version.index,
        [[instr.op.value, list(instr.args)] for instr in version.program],
        list(version.inputs),
        list(version.transforms),
        version.encoding_mask,
    ]


def _describe_seed(master: np.random.SeedSequence) -> list:
    entropy = master.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return [entropy, list(master.spawn_key), master.n_children_spawned]


def campaign_fingerprint(
    version_a: "DiverseVersion",
    version_b: "DiverseVersion",
    oracle_output: Sequence[int],
    n_trials: int,
    master: np.random.SeedSequence,
    injector: "FaultInjector",
    round_instructions: int,
    memory_words: int,
    max_rounds: int,
) -> str:
    """Hex digest identifying a campaign configuration exactly.

    ``master`` must be the seed sequence *before* trial spawning so the
    digest covers the spawn state the trials will actually see.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code_version": __version__,
        "versions": [_describe_version(version_a), _describe_version(version_b)],
        "oracle": [int(x) for x in oracle_output],
        "n_trials": int(n_trials),
        "seed": _describe_seed(master),
        "injector": {
            "mix": sorted(
                (kind.value, float(prob)) for kind, prob in injector.mix.items()
            ),
            "memory_words": injector.memory_words,
            "max_instruction": injector.max_instruction,
        },
        "round_instructions": int(round_instructions),
        "memory_words": int(memory_words),
        "max_rounds": int(max_rounds),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execution_prefix_fingerprint(
    version_a: "DiverseVersion",
    version_b: "DiverseVersion",
    round_instructions: int,
    memory_words: int,
    max_rounds: int,
) -> str:
    """Hex digest identifying one *fault-free duplex execution* exactly.

    The key for the clean-prefix memo (:mod:`repro.faults.prefix`): it
    covers everything that determines the clean round-by-round trajectory
    of a version pair — but deliberately *not* the campaign's seed, trial
    count, oracle, or injector, which only affect where faults land.  All
    trials of every campaign over the same pair and limits therefore share
    one prefix.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code_version": __version__,
        "versions": [_describe_version(version_a), _describe_version(version_b)],
        "round_instructions": int(round_instructions),
        "memory_words": int(memory_words),
        "max_rounds": int(max_rounds),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CampaignCache:
    """A directory of per-shard campaign results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def default(cls) -> "CampaignCache":
        """The cache at ``$VDS_CACHE_DIR`` or ``results/cache``."""
        return cls(os.environ.get("VDS_CACHE_DIR", DEFAULT_CACHE_DIR))

    def _shard_path(self, fingerprint: str, start: int, count: int) -> Path:
        return self.root / fingerprint / f"shard-{start:06d}-{count:05d}.pkl"

    def lookup(
        self,
        fingerprint: str,
        start: int,
        count: int,
    ) -> Optional["CampaignResult"]:
        """The cached shard, or ``None`` on a miss (or corrupt entry)."""
        path = self._shard_path(fingerprint, start, count)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
        ):
            self.misses += 1
            logger.debug("cache miss: %s", path)
            return None
        if len(result.trials) != count:
            self.misses += 1
            logger.debug(
                "cache entry rejected (%d trials, want %d): %s",
                len(result.trials),
                count,
                path,
            )
            return None
        self.hits += 1
        logger.debug("cache hit: %s", path)
        return result

    def store(
        self,
        fingerprint: str,
        start: int,
        count: int,
        result: "CampaignResult",
    ) -> None:
        """Atomically persist one shard result."""
        path = self._shard_path(fingerprint, start, count)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        logger.debug("cache store: %s (%d trials)", path, len(result.trials))

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in sorted(self.root.rglob("*.pkl")):
            path.unlink()
            removed += 1
        for directory in sorted(self.root.glob("*")):
            if directory.is_dir() and not any(directory.iterdir()):
                directory.rmdir()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CampaignCache(root={str(self.root)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )
