"""On-disk shard cache for campaign results.

Cache entries live under ``results/cache/<fingerprint>/`` where the
fingerprint digests everything that determines a campaign's outcome: the
version pair (programs, inputs, masks), the oracle, the trial count and
limits, the injector configuration, the master seed, and the package
version.  Any change to one of these — including upgrading the code —
changes the fingerprint and therefore invalidates the entry; stale
directories can simply be deleted (``rm -rf results/cache``).

Entries are CRC-sealed pickles of
:class:`~repro.faults.campaign.CampaignResult` shards: a fixed header
(magic, schema, payload CRC-32, payload length) followed by the pickle
payload.  Writes are crash-atomic — the bytes go to a temp file in the
same directory, are flushed and fsynced, and only then renamed over the
final name — so a ``SIGKILL`` at any instant leaves either the old entry
or no entry, never a torn one.  Reads verify the seal: a truncated or
bit-flipped entry is *quarantined* (moved aside for post-mortems, see
:attr:`CampaignCache.quarantine_dir`) and treated as a miss, so a
corrupted cache costs a recomputation instead of a crash or — far worse
— a silently wrong campaign.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro._version import __version__
from repro.parallel.sharding import shard_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.diversity.generator import DiverseVersion
    from repro.faults.campaign import CampaignResult
    from repro.faults.injector import FaultInjector

__all__ = [
    "CACHE_SCHEMA",
    "CampaignCache",
    "campaign_fingerprint",
    "execution_prefix_fingerprint",
    "seal_payload",
    "unseal_payload",
    "write_file_atomic",
]

logger = logging.getLogger(__name__)

#: Bump when the pickle layout or trial semantics change within a release.
#: Schema 2 introduced the CRC-sealed entry container.
CACHE_SCHEMA = 2

#: Sealed-entry header: magic, schema, CRC-32 of the payload, payload
#: length.  The explicit length lets a reader distinguish truncation
#: (short file) from bit rot (full-length file, bad CRC).
_SEAL_MAGIC = b"VDSC"
_SEAL_HEADER = struct.Struct("<4sHII")


def seal_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the sealed container (header + bytes)."""
    return _SEAL_HEADER.pack(_SEAL_MAGIC, CACHE_SCHEMA,
                             zlib.crc32(payload) & 0xFFFFFFFF,
                             len(payload)) + payload


def unseal_payload(blob: bytes) -> bytes:
    """The payload of a sealed container; raises ``ValueError`` on any
    corruption (bad magic, wrong schema, truncation, CRC mismatch)."""
    if len(blob) < _SEAL_HEADER.size:
        raise ValueError("sealed entry shorter than its header")
    magic, schema, crc, length = _SEAL_HEADER.unpack_from(blob)
    if magic != _SEAL_MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if schema != CACHE_SCHEMA:
        raise ValueError(f"sealed entry schema {schema}, want {CACHE_SCHEMA}")
    payload = blob[_SEAL_HEADER.size:]
    if len(payload) != length:
        raise ValueError(
            f"sealed entry truncated: {len(payload)} of {length} bytes"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ValueError("sealed entry CRC mismatch (bit corruption)")
    return payload


def write_file_atomic(path: Path, blob: bytes) -> None:
    """Crash-atomic file write: temp file, flush, fsync, rename.

    The temp file lives in the destination directory so the rename can
    never cross a filesystem boundary; a process killed at any point
    leaves either the old file or a stray ``*.tmp-<pid>`` that the next
    writer sweeps, never a half-written destination.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
    try:
        with tmp.open("wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise

#: Default cache root, relative to the working directory (the repo uses
#: ``results/`` for all generated artifacts).  Override with the
#: ``VDS_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = Path("results") / "cache"


def _describe_version(version: "DiverseVersion") -> list:
    return [
        version.index,
        [[instr.op.value, list(instr.args)] for instr in version.program],
        list(version.inputs),
        list(version.transforms),
        version.encoding_mask,
    ]


def _describe_seed(master: np.random.SeedSequence) -> list:
    entropy = master.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return [entropy, list(master.spawn_key), master.n_children_spawned]


def campaign_fingerprint(
    version_a: "DiverseVersion",
    version_b: "DiverseVersion",
    oracle_output: Sequence[int],
    n_trials: int,
    master: np.random.SeedSequence,
    injector: "FaultInjector",
    round_instructions: int,
    memory_words: int,
    max_rounds: int,
) -> str:
    """Hex digest identifying a campaign configuration exactly.

    ``master`` must be the seed sequence *before* trial spawning so the
    digest covers the spawn state the trials will actually see.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code_version": __version__,
        "versions": [_describe_version(version_a), _describe_version(version_b)],
        "oracle": [int(x) for x in oracle_output],
        "n_trials": int(n_trials),
        "seed": _describe_seed(master),
        "injector": {
            "mix": sorted(
                (kind.value, float(prob)) for kind, prob in injector.mix.items()
            ),
            "memory_words": injector.memory_words,
            "max_instruction": injector.max_instruction,
        },
        "round_instructions": int(round_instructions),
        "memory_words": int(memory_words),
        "max_rounds": int(max_rounds),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execution_prefix_fingerprint(
    version_a: "DiverseVersion",
    version_b: "DiverseVersion",
    round_instructions: int,
    memory_words: int,
    max_rounds: int,
) -> str:
    """Hex digest identifying one *fault-free duplex execution* exactly.

    The key for the clean-prefix memo (:mod:`repro.faults.prefix`): it
    covers everything that determines the clean round-by-round trajectory
    of a version pair — but deliberately *not* the campaign's seed, trial
    count, oracle, or injector, which only affect where faults land.  All
    trials of every campaign over the same pair and limits therefore share
    one prefix.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "code_version": __version__,
        "versions": [_describe_version(version_a), _describe_version(version_b)],
        "round_instructions": int(round_instructions),
        "memory_words": int(memory_words),
        "max_rounds": int(max_rounds),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CampaignCache:
    """A directory of per-shard campaign results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Entries whose CRC seal failed (quarantined, counted as misses).
        self.corrupt = 0

    @classmethod
    def default(cls) -> "CampaignCache":
        """The cache at ``$VDS_CACHE_DIR`` or ``results/cache``."""
        return cls(os.environ.get("VDS_CACHE_DIR", DEFAULT_CACHE_DIR))

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / "quarantine"

    def _shard_path(self, fingerprint: str, start: int, count: int) -> Path:
        return self.root / fingerprint / f"shard-{shard_id(start, count)}.pkl"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it can never be read again.

        The entry keeps its fingerprint in the quarantined name; if the
        move itself fails (e.g. a concurrent writer already replaced the
        file) the entry is deleted instead — a corrupt file must never
        survive under its live name.
        """
        self.corrupt += 1
        dest = self.quarantine_dir / f"{path.parent.name}-{path.name}"
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            logger.warning("cache entry corrupt (%s): %s -> quarantined %s",
                           reason, path, dest)
        except OSError:
            path.unlink(missing_ok=True)
            logger.warning("cache entry corrupt (%s): %s -> deleted", reason,
                           path)

    def lookup(
        self,
        fingerprint: str,
        start: int,
        count: int,
    ) -> Optional["CampaignResult"]:
        """The cached shard, or ``None`` on a miss.

        A corrupt entry — truncated file, flipped bit, bad magic, or a
        payload that unpickles to the wrong trial count — is quarantined
        and reported as a miss, so the caller recomputes the shard
        instead of crashing (or worse, merging garbage).
        """
        path = self._shard_path(fingerprint, start, count)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            logger.debug("cache miss: %s", path)
            return None
        try:
            payload = unseal_payload(blob)
        except ValueError as exc:
            self._quarantine(path, str(exc))
            self.misses += 1
            return None
        try:
            result = pickle.loads(payload)
        except (
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
        ) as exc:
            # The seal was intact but the payload no longer loads (e.g.
            # a class moved between releases without a schema bump).
            self._quarantine(path, f"unpicklable payload: {exc}")
            self.misses += 1
            return None
        if len(result.trials) != count:
            self._quarantine(
                path, f"{len(result.trials)} trials, want {count}"
            )
            self.misses += 1
            return None
        self.hits += 1
        logger.debug("cache hit: %s", path)
        return result

    def store(
        self,
        fingerprint: str,
        start: int,
        count: int,
        result: "CampaignResult",
    ) -> None:
        """Atomically persist one shard result (sealed, fsynced)."""
        path = self._shard_path(fingerprint, start, count)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        write_file_atomic(path, seal_payload(payload))
        self.sweep_partials(path.parent)
        logger.debug("cache store: %s (%d trials)", path, len(result.trials))

    def sweep_partials(self, directory: Optional[Path] = None) -> int:
        """Delete stray ``*.tmp-*`` files left by killed writers.

        A temp file belonging to a *live* writer is never older than one
        in-flight write; anything with a pid that no longer exists is
        garbage.  Sweeping is safe because writers always use their own
        pid in the temp name.
        """
        removed = 0
        roots = [directory] if directory is not None else [
            d for d in self.root.glob("*") if d.is_dir()
        ]
        for root in roots:
            for tmp in root.glob("*.tmp-*"):
                pid_text = tmp.name.rsplit("tmp-", 1)[-1]
                if pid_text.isdigit() and _pid_alive(int(pid_text)):
                    continue
                tmp.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in sorted(self.root.rglob("*.pkl")):
            path.unlink()
            removed += 1
        for directory in sorted(self.root.glob("*")):
            if directory.is_dir() and not any(directory.iterdir()):
                directory.rmdir()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CampaignCache(root={str(self.root)!r}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"corrupt={self.corrupt})"
        )


def _pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True
