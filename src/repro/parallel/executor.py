"""Process-pool execution of sharded campaigns and generic trial maps.

The executor owns *how* shards run (in-process or on a
:class:`~concurrent.futures.ProcessPoolExecutor`); the result is the
same either way because every shard's randomness is fixed by its
per-trial seed sequences (see :mod:`repro.parallel`).

Observability crosses the pool the same way results do: when the parent
has an active tracer/registry (:mod:`repro.obs`), each worker records
into a *fresh* per-shard tracer, metrics registry, and wall-clock
profiler, ships them back as plain data with the shard result, and the
parent adopts trace events in shard order and folds metric counters
together — so merged telemetry is independent of the worker count, just
like the trials themselves.  With observability off, workers receive
``None`` and the per-trial cost is one pointer check.
"""

from __future__ import annotations

import logging
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.diversity.generator import DiverseVersion
from repro.faults.campaign import (
    CampaignResult,
    record_block_metrics,
    record_interpreter_metric,
    run_trial_block,
)
from repro.isa.compiler import default_backend
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import Profiler
from repro.obs.trace import SpanEvent, Tracer, active_or_none
from repro.parallel.cache import CampaignCache, campaign_fingerprint
from repro.parallel.sharding import plan_shards, resolve_workers
from repro.sim.rng import SeedLike, derive_seed_sequence

__all__ = ["parallel_map", "run_sharded_campaign"]

logger = logging.getLogger(__name__)

_T = TypeVar("_T")
_R = TypeVar("_R")


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` where it is safe (fast start, no re-import)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and sys.platform != "darwin":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    n_workers: Union[int, str, None] = None,
) -> list[_R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    a caller is worker-count-oblivious as long as ``fn`` is a pure
    function of its item.  ``fn`` and the items must be picklable when
    more than one worker is used.
    """
    workers = min(resolve_workers(n_workers), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(fn, items, chunksize=1))


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to run one shard."""

    version_a: DiverseVersion
    version_b: DiverseVersion
    oracle_output: tuple[int, ...]
    seeds: tuple[np.random.SeedSequence, ...]
    injector: FaultInjector
    round_instructions: int
    memory_words: int
    max_rounds: int
    first_trial_index: int = 0
    collect_trace: bool = False
    collect_metrics: bool = False
    #: Interpreter backend the parent resolved; workers adopt it so a
    #: programmatic set_default_backend() survives pool spawn.
    backend: str = "compiled"


@dataclass(frozen=True)
class _ShardOutput:
    """Shard result plus its telemetry, in pool-transportable form."""

    result: CampaignResult
    trace_events: Optional[tuple[SpanEvent, ...]] = None
    metrics: Optional[dict[str, Any]] = None
    profile: Optional[dict[str, Any]] = None


def _execute_shard(task: _ShardTask) -> _ShardOutput:
    from repro.isa.compiler import set_default_backend

    set_default_backend(task.backend)
    tracer = Tracer() if task.collect_trace else None
    metrics = MetricsRegistry() if task.collect_metrics else None
    collect = task.collect_trace or task.collect_metrics
    profiler = Profiler() if collect else None
    if tracer is not None:
        shard_span = tracer.start(
            "campaign.shard",
            vt=task.first_trial_index,
            start=task.first_trial_index,
            count=len(task.seeds),
            backend=task.backend,
        )

    def run() -> CampaignResult:
        return run_trial_block(
            task.version_a,
            task.version_b,
            task.oracle_output,
            task.seeds,
            task.injector,
            task.round_instructions,
            task.memory_words,
            task.max_rounds,
            tracer=tracer,
            metrics=metrics,
            first_trial_index=task.first_trial_index,
        )

    if profiler is not None:
        result = profiler.time("campaign.shard", run)
    else:
        result = run()
    if tracer is not None:
        tracer.end(shard_span, vt=task.first_trial_index + len(task.seeds))
    return _ShardOutput(
        result=result,
        trace_events=tuple(tracer.events) if tracer is not None else None,
        metrics=metrics.to_dict() if metrics is not None else None,
        profile=profiler.to_dict() if profiler is not None else None,
    )


def run_sharded_campaign(
    version_a: DiverseVersion,
    version_b: DiverseVersion,
    oracle_output: Iterable[int],
    n_trials: int,
    rng: SeedLike,
    injector: FaultInjector,
    *,
    round_instructions: int = 2_000,
    memory_words: int = 256,
    n_workers: Union[int, str, None] = None,
    shard_size: Optional[int] = None,
    cache: Optional[CampaignCache] = None,
    max_rounds: int = 4_000,
) -> CampaignResult:
    """Shard, (optionally) fan out, merge — preserving exact results.

    The per-trial seed tree is spawned once from ``rng``; shards receive
    contiguous seed slices, so the merged trial sequence is identical
    for every worker count, and cached shards short-circuit computation.

    Telemetry follows the same merge discipline: the active tracer (if
    any) adopts worker trace events in shard order under one
    ``campaign`` span, the active registry folds worker counters in, and
    cache-hit shards *replay* their trials into the counters — the
    merged ``campaign_outcome_total`` family therefore always equals
    ``CampaignResult.outcome_counts()`` of the returned result.
    """
    tracer = active_or_none()
    metrics = get_registry()
    workers = resolve_workers(n_workers)
    master = derive_seed_sequence(rng)
    shards = plan_shards(n_trials, shard_size)
    oracle = tuple(oracle_output)
    fingerprint = None
    if cache is not None:
        fingerprint = campaign_fingerprint(
            version_a,
            version_b,
            oracle,
            n_trials,
            master,
            injector,
            round_instructions,
            memory_words,
            max_rounds,
        )
    seeds = master.spawn(n_trials)
    if tracer is not None:
        campaign_span = tracer.start(
            "campaign",
            vt=0,
            n_trials=n_trials,
            mode="sharded",
            workers=workers,
            shards=len(shards),
            vds_interpreter=default_backend(),
        )
    if metrics is not None:
        record_interpreter_metric(metrics)

    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    results: list[Optional[CampaignResult]] = [None] * len(shards)
    pending: list[int] = []
    for idx, (start, count) in enumerate(shards):
        if cache is not None:
            hit = cache.lookup(fingerprint, start, count)
            if hit is not None:
                results[idx] = hit
                if tracer is not None:
                    tracer.point(
                        "campaign.shard.cached", vt=start, start=start, count=count
                    )
                if metrics is not None:
                    record_block_metrics(metrics, hit)
                continue
        pending.append(idx)

    tasks = []
    for idx in pending:
        start, count = shards[idx]
        tasks.append(
            _ShardTask(
                version_a,
                version_b,
                oracle,
                tuple(seeds[start : start + count]),
                injector,
                round_instructions,
                memory_words,
                max_rounds,
                first_trial_index=start,
                collect_trace=tracer is not None,
                collect_metrics=metrics is not None,
                backend=default_backend(),
            )
        )
    computed = parallel_map(_execute_shard, tasks, workers)
    profiler = Profiler() if computed and computed[0].profile is not None else None
    for idx, output in zip(pending, computed):
        results[idx] = output.result
        if tracer is not None and output.trace_events is not None:
            tracer.adopt(output.trace_events, parent_id=campaign_span)
        if metrics is not None and output.metrics is not None:
            metrics.merge_dict(output.metrics)
            if output.profile is not None:
                # Each shard times exactly one "campaign.shard" section.
                metrics.histogram(
                    "campaign_shard_seconds",
                    buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60),
                ).observe(output.profile["campaign.shard"]["total"])
        if profiler is not None and output.profile is not None:
            profiler.merge_dict(output.profile)
        if cache is not None:
            start, count = shards[idx]
            cache.store(fingerprint, start, count, output.result)

    if metrics is not None and cache is not None:
        metrics.counter("campaign_cache_hits_total").inc(cache.hits - hits_before)
        metrics.counter("campaign_cache_misses_total").inc(
            cache.misses - misses_before
        )
    if tracer is not None:
        tracer.end(campaign_span, vt=n_trials)
    if profiler is not None and profiler.sections:
        logger.debug("shard wall-clock profile:\n%s", profiler.report())
    logger.info(
        "sharded campaign done: %d trials in %d shards (%d cached) "
        "across %d workers",
        n_trials,
        len(shards),
        len(shards) - len(pending),
        workers,
    )
    return CampaignResult.merge(results)
