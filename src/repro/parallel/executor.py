"""Process-pool execution of sharded campaigns and generic trial maps.

The executor owns *how* shards run (in-process or on a
:class:`~concurrent.futures.ProcessPoolExecutor`); the result is the
same either way because every shard's randomness is fixed by its
per-trial seed sequences (see :mod:`repro.parallel`).

Observability crosses the pool the same way results do: when the parent
has an active tracer/registry (:mod:`repro.obs`), each worker records
into a *fresh* per-shard tracer, metrics registry, and wall-clock
profiler, ships them back as plain data with the shard result, and the
parent adopts trace events in shard order and folds metric counters
together — so merged telemetry is independent of the worker count, just
like the trials themselves.  With observability off, workers receive
``None`` and the per-trial cost is one pointer check.

Fault tolerance
---------------
Shards are pure functions of their seed slices, which makes every
failure recoverable by re-execution — the executor applies the paper's
own checkpoint-and-retry discipline to the harness that simulates it:

* a worker that dies (``SIGKILL``, OOM kill, segfault) breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`; the executor
  respawns the pool and requeues every shard that was in flight;
* a shard that exceeds its wall-clock budget (``VDS_SHARD_TIMEOUT``) is
  declared hung, its worker pool is killed to reclaim the stuck
  process, and the shard is retried;
* a shard that raises is retried with exponential backoff plus jitter,
  up to ``VDS_SHARD_RETRIES`` extra attempts;
* a shard that exhausts its attempts — or a pool that keeps dying
  (``VDS_POOL_RESPAWNS`` consecutive respawns) — degrades gracefully to
  *in-process* execution, trading parallelism for forward progress.

Every recovery emits a ``campaign.retry`` trace point and counts into
``campaign_shard_retries_total{reason=…}`` /
``campaign_shard_timeouts_total``, so a recovered campaign is
distinguishable from a clean one even though its *result* is
bit-identical.  When a :class:`~repro.parallel.journal.CampaignJournal`
is attached, each completed shard is recorded (after its result is
safely in the cache), which is what makes an interrupted campaign
resumable from exactly where it stopped.

The ``VDS_CHAOS_DIR`` hook is the crash-test seam: when set, workers
look for claim-once token files (``kill-…``, ``hang-…``, ``fail-…``)
before executing a shard and inject the named fault.  It exists for the
chaos test harness (``tests/parallel/chaos.py``) and is inert — one
``os.environ.get`` per shard — unless the variable is set.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import signal
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.diversity.generator import DiverseVersion
from repro.errors import CampaignExecutionError
from repro.faults.campaign import (
    CampaignResult,
    record_block_metrics,
    record_interpreter_metric,
    run_trial_block,
)
from repro.isa.compiler import default_backend
from repro.faults.injector import FaultInjector
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import Profiler
from repro.obs.trace import SpanEvent, Tracer, active_or_none
from repro.parallel.cache import CampaignCache, campaign_fingerprint
from repro.parallel.journal import CampaignJournal
from repro.parallel.sharding import plan_shards, resolve_workers, shard_id
from repro.sim.rng import SeedLike, derive_seed_sequence

__all__ = [
    "FaultTolerance",
    "parallel_map",
    "run_sharded_campaign",
]

logger = logging.getLogger(__name__)

_T = TypeVar("_T")
_R = TypeVar("_R")


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` where it is safe (fast start, no re-import)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and sys.platform != "darwin":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    n_workers: Union[int, str, None] = None,
) -> list[_R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    a caller is worker-count-oblivious as long as ``fn`` is a pure
    function of its item.  ``fn`` and the items must be picklable when
    more than one worker is used.
    """
    workers = min(resolve_workers(n_workers), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(fn, items, chunksize=1))


# -- fault-tolerance configuration -------------------------------------------


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return float(raw)
    except ValueError:
        logger.warning("ignoring non-numeric %s=%r", name, raw)
        return default


def _env_int(name: str, default: int) -> int:
    return int(_env_float(name, default))


@dataclass(frozen=True)
class FaultTolerance:
    """Retry/timeout policy for shard execution.

    The defaults come from the environment so operators can harden a
    flaky fleet without touching call sites:

    ``VDS_SHARD_RETRIES``
        Extra attempts per shard after its first failure (default 2).
    ``VDS_SHARD_TIMEOUT``
        Wall-clock seconds before an in-flight shard is declared hung
        and its pool killed (default 0 = no timeout).
    ``VDS_SHARD_BACKOFF``
        Base of the exponential backoff between attempts, in seconds
        (default 0.05; attempt *k* sleeps up to ``base * 2**(k-1)`` with
        full jitter, capped at 2 s).
    ``VDS_POOL_RESPAWNS``
        Consecutive pool deaths tolerated before the executor degrades
        to in-process execution (default 2).
    """

    retries: int = 2
    timeout: float = 0.0
    backoff: float = 0.05
    max_respawns: int = 2

    @classmethod
    def from_env(cls) -> "FaultTolerance":
        return cls(
            retries=max(0, _env_int("VDS_SHARD_RETRIES", 2)),
            timeout=max(0.0, _env_float("VDS_SHARD_TIMEOUT", 0.0)),
            backoff=max(0.0, _env_float("VDS_SHARD_BACKOFF", 0.05)),
            max_respawns=max(0, _env_int("VDS_POOL_RESPAWNS", 2)),
        )

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def sleep(self, attempt: int) -> None:
        """Exponential backoff with full jitter before attempt ``attempt``."""
        if self.backoff <= 0:
            return
        ceiling = min(2.0, self.backoff * (2 ** max(0, attempt - 2)))
        time.sleep(random.uniform(0, ceiling))


# -- chaos-injection seam (test harness) --------------------------------------


class ChaosInjectedError(RuntimeError):
    """Raised by a ``fail-…`` chaos token (test harness only)."""


def _maybe_inject_chaos(first_trial_index: int) -> None:
    """Honor claim-once chaos tokens for this shard, if any are planted.

    Token files live in ``$VDS_CHAOS_DIR`` and are named
    ``<action>-<start:06d>-<n>.token`` with ``action`` one of ``kill``
    (``SIGKILL`` own process), ``hang`` (sleep for the seconds in the
    file body), or ``fail`` (raise).  A token is *claimed* by an atomic
    rename before it fires, so each token injects exactly one fault no
    matter how many times the shard is retried.  ``kill`` and ``hang``
    only fire inside worker processes — the in-process degradation path
    must never kill or stall the parent.
    """
    chaos_dir = os.environ.get("VDS_CHAOS_DIR")
    if not chaos_dir:
        return
    in_worker = multiprocessing.parent_process() is not None
    for token in sorted(Path(chaos_dir).glob(
            f"*-{first_trial_index:06d}-*.token")):
        action = token.name.split("-", 1)[0]
        if action not in ("kill", "hang", "fail"):
            continue
        if action in ("kill", "hang") and not in_worker:
            continue
        claimed = token.with_suffix(".claimed")
        try:
            os.rename(token, claimed)
        except OSError:
            continue  # another attempt/worker claimed it first
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            try:
                seconds = float(claimed.read_text().strip() or "3600")
            except ValueError:
                seconds = 3600.0
            time.sleep(seconds)
        elif action == "fail":
            raise ChaosInjectedError(
                f"chaos token {token.name} failed shard "
                f"{first_trial_index}"
            )


# -- shard execution ----------------------------------------------------------


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to run one shard."""

    version_a: DiverseVersion
    version_b: DiverseVersion
    oracle_output: tuple[int, ...]
    seeds: tuple[np.random.SeedSequence, ...]
    injector: FaultInjector
    round_instructions: int
    memory_words: int
    max_rounds: int
    first_trial_index: int = 0
    collect_trace: bool = False
    collect_metrics: bool = False
    #: Interpreter backend the parent resolved; workers adopt it so a
    #: programmatic set_default_backend() survives pool spawn.
    backend: str = "compiled"


@dataclass(frozen=True)
class _ShardOutput:
    """Shard result plus its telemetry, in pool-transportable form."""

    result: CampaignResult
    trace_events: Optional[tuple[SpanEvent, ...]] = None
    metrics: Optional[dict[str, Any]] = None
    profile: Optional[dict[str, Any]] = None


def _execute_shard(task: _ShardTask) -> _ShardOutput:
    from repro.isa.compiler import set_default_backend

    _maybe_inject_chaos(task.first_trial_index)
    set_default_backend(task.backend)
    tracer = Tracer() if task.collect_trace else None
    metrics = MetricsRegistry() if task.collect_metrics else None
    collect = task.collect_trace or task.collect_metrics
    profiler = Profiler() if collect else None
    if tracer is not None:
        shard_span = tracer.start(
            "campaign.shard",
            vt=task.first_trial_index,
            start=task.first_trial_index,
            count=len(task.seeds),
            backend=task.backend,
        )

    def run() -> CampaignResult:
        return run_trial_block(
            task.version_a,
            task.version_b,
            task.oracle_output,
            task.seeds,
            task.injector,
            task.round_instructions,
            task.memory_words,
            task.max_rounds,
            tracer=tracer,
            metrics=metrics,
            first_trial_index=task.first_trial_index,
        )

    if profiler is not None:
        result = profiler.time("campaign.shard", run)
    else:
        result = run()
    if tracer is not None:
        tracer.end(shard_span, vt=task.first_trial_index + len(task.seeds))
    return _ShardOutput(
        result=result,
        trace_events=tuple(tracer.events) if tracer is not None else None,
        metrics=metrics.to_dict() if metrics is not None else None,
        profile=profiler.to_dict() if profiler is not None else None,
    )


# -- the fault-tolerant shard runner ------------------------------------------


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, stuck workers included.

    ``shutdown(wait=False)`` alone would leave a hung worker alive (and
    the interpreter would join it at exit — forever); killing the worker
    processes first makes the join trivial.  ``_processes`` is private
    but stable across supported CPythons; if it ever disappears the
    fallback is a plain non-waiting shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class _ShardRunner:
    """Runs shard tasks with retries, timeouts, and pool recovery.

    One instance per campaign.  ``on_complete(idx, output)`` fires the
    moment a shard's result is available (cache/journal persistence),
    *not* in shard order; deterministic post-processing (trace adoption,
    metric folding) happens afterwards over the collected outputs.
    """

    def __init__(self, tasks: Sequence[_ShardTask], workers: int,
                 ft: FaultTolerance,
                 tracer: Optional[Tracer],
                 metrics: Optional[MetricsRegistry],
                 parent_span: Optional[int],
                 on_complete: Callable[[int, _ShardOutput], None],
                 journal: Optional[CampaignJournal] = None):
        self.tasks = tasks
        self.workers = workers
        self.ft = ft
        self.tracer = tracer
        self.metrics = metrics
        self.parent_span = parent_span
        self.on_complete = on_complete
        self.journal = journal
        self.outputs: dict[int, _ShardOutput] = {}
        self.respawns = 0
        self.degraded = False

    # -- telemetry ----------------------------------------------------------
    def _shard(self, idx: int) -> tuple[int, int]:
        task = self.tasks[idx]
        return task.first_trial_index, len(task.seeds)

    def _note_retry(self, idx: int, attempt: int, reason: str) -> None:
        start, count = self._shard(idx)
        logger.warning("shard %s attempt %d failed (%s); retrying",
                       shard_id(start, count), attempt, reason)
        if self.metrics is not None:
            self.metrics.counter("campaign_shard_retries_total",
                                 reason=reason).inc()
        if self.tracer is not None:
            self.tracer.point("campaign.retry", vt=start,
                              parent=self.parent_span, start=start,
                              count=count, attempt=attempt, reason=reason)

    def _note_timeout(self, idx: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("campaign_shard_timeouts_total").inc()

    def _note_respawn(self) -> None:
        self.respawns += 1
        logger.warning("worker pool died (%d/%d respawns used)",
                       self.respawns, self.ft.max_respawns + 1)
        if self.metrics is not None:
            self.metrics.counter("campaign_pool_respawns_total").inc()
        if self.respawns > self.ft.max_respawns and not self.degraded:
            self._degrade("pool died %d times" % self.respawns)

    def _degrade(self, why: str) -> None:
        self.degraded = True
        logger.warning(
            "degrading to in-process shard execution (%s); the campaign "
            "continues without parallelism", why)
        if self.metrics is not None:
            self.metrics.counter("campaign_pool_degraded_total").inc()
        if self.tracer is not None:
            self.tracer.point("campaign.degraded", parent=self.parent_span,
                              reason=why)

    # -- completion ---------------------------------------------------------
    def _complete(self, idx: int, output: _ShardOutput) -> None:
        self.outputs[idx] = output
        self.on_complete(idx, output)

    def _run_inline(self, idx: int, attempt: int) -> None:
        """Last-resort in-process execution of one shard.

        This is the graceful-degradation endpoint: no pool, no timeout
        (the parent cannot kill itself), but chaos ``kill``/``hang``
        tokens do not fire in the parent either, so a test-injected
        crash loop terminates here.  A shard that *still* raises is a
        real, deterministic bug — surface it with resume context.
        """
        try:
            self._complete(idx, _execute_shard(self.tasks[idx]))
        except Exception as exc:
            start, count = self._shard(idx)
            raise CampaignExecutionError(
                f"shard {shard_id(start, count)} failed after "
                f"{attempt} attempt(s), last error: {exc!r}",
                shard=(start, count),
                run_id=self.journal.run_id if self.journal else None,
                journal_path=(str(self.journal.directory)
                              if self.journal else None),
            ) from exc

    # -- serial path --------------------------------------------------------
    def run_serial(self) -> dict[int, _ShardOutput]:
        for idx in range(len(self.tasks)):
            attempt = 1
            while True:
                try:
                    self._complete(idx, _execute_shard(self.tasks[idx]))
                    break
                except Exception as exc:
                    if attempt >= self.ft.max_attempts:
                        start, count = self._shard(idx)
                        raise CampaignExecutionError(
                            f"shard {shard_id(start, count)} failed after "
                            f"{attempt} attempt(s), last error: {exc!r}",
                            shard=(start, count),
                            run_id=(self.journal.run_id
                                    if self.journal else None),
                            journal_path=(str(self.journal.directory)
                                          if self.journal else None),
                        ) from exc
                    self._note_retry(idx, attempt, "error")
                    attempt += 1
                    self.ft.sleep(attempt)
        return self.outputs

    # -- pool path ----------------------------------------------------------
    def run_pool(self) -> dict[int, _ShardOutput]:
        queue: deque[tuple[int, int]] = deque(
            (idx, 1) for idx in range(len(self.tasks))
        )
        inflight: dict[Any, tuple[int, int, Optional[float]]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while queue or inflight:
                if self.degraded:
                    for idx, attempt in list(queue):
                        self._run_inline(idx, attempt)
                    queue.clear()
                    continue
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=_pool_context()
                    )
                try:
                    self._fill_window(pool, queue, inflight)
                except BrokenProcessPool:
                    pool = self._handle_broken_pool(pool, queue, inflight)
                    continue
                if not inflight:
                    continue
                done = self._wait(inflight)
                if not done:
                    pool = self._handle_timeouts(pool, queue, inflight)
                    continue
                broken_victims: list[tuple[int, int]] = []
                for fut in done:
                    idx, attempt, _deadline = inflight.pop(fut)
                    try:
                        output = fut.result()
                    except BrokenProcessPool:
                        broken_victims.append((idx, attempt))
                        continue
                    except Exception:
                        self._retry_or_degrade(idx, attempt, "error", queue)
                        continue
                    self._complete(idx, output)
                if broken_victims:
                    pool = self._handle_broken_pool(pool, queue, inflight,
                                                    broken_victims)
        finally:
            if pool is not None:
                _kill_pool(pool)
        return self.outputs

    def _fill_window(self, pool: ProcessPoolExecutor,
                     queue: deque, inflight: dict) -> None:
        """Keep at most ``workers`` shards in flight.

        The window equals the pool size so a submitted shard starts
        (approximately) immediately — which is what makes the per-shard
        wall-clock deadline meaningful without extra worker-side IPC.
        """
        while queue and len(inflight) < self.workers:
            idx, attempt = queue.popleft()
            if attempt > self.ft.max_attempts:
                self._run_inline(idx, attempt - 1)
                continue
            deadline = (time.monotonic() + self.ft.timeout
                        if self.ft.timeout > 0 else None)
            try:
                fut = pool.submit(_execute_shard, self.tasks[idx])
            except BrokenProcessPool:
                queue.appendleft((idx, attempt))
                raise
            inflight[fut] = (idx, attempt, deadline)

    def _wait(self, inflight: dict) -> set:
        timeout = None
        deadlines = [d for (_i, _a, d) in inflight.values() if d is not None]
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic())
        done, _pending = futures_wait(set(inflight), timeout=timeout,
                                      return_when=FIRST_COMPLETED)
        return done

    def _retry_or_degrade(self, idx: int, attempt: int, reason: str,
                          queue: deque) -> None:
        """Queue the next attempt for a failed shard (or go inline)."""
        self._note_retry(idx, attempt, reason)
        if attempt >= self.ft.max_attempts:
            self._run_inline(idx, attempt)
        else:
            queue.append((idx, attempt + 1))
            self.ft.sleep(attempt + 1)

    def _handle_timeouts(self, pool: ProcessPoolExecutor, queue: deque,
                         inflight: dict) -> Optional[ProcessPoolExecutor]:
        """Kill the pool if any in-flight shard blew its deadline.

        Only the expired shard(s) count as timeouts/retries; innocent
        in-flight shards are requeued at their current attempt, because
        re-executing them is collateral of the pool kill, not a failure
        of their own.
        """
        now = time.monotonic()
        expired = [fut for fut, (_i, _a, d) in inflight.items()
                   if d is not None and now >= d and not fut.done()]
        if not expired:
            return pool
        for fut in expired:
            idx, attempt, _d = inflight.pop(fut)
            start, count = self._shard(idx)
            logger.warning("shard %s hung past %.3gs wall-clock; killing "
                           "its pool", shard_id(start, count),
                           self.ft.timeout)
            self._note_timeout(idx)
            self._retry_or_degrade(idx, attempt, "timeout", queue)
        for fut, (idx, attempt, _d) in inflight.items():
            queue.appendleft((idx, attempt))
        inflight.clear()
        _kill_pool(pool)
        self._note_respawn()
        return None

    def _handle_broken_pool(
        self, pool: ProcessPoolExecutor, queue: deque, inflight: dict,
        victims: Optional[list[tuple[int, int]]] = None,
    ) -> Optional[ProcessPoolExecutor]:
        """A worker died: respawn the pool, retry everything in flight.

        A broken pool cannot attribute the death to one shard, so every
        shard that was in flight is charged a retry (reason
        ``broken-pool``); shards still queued go back untouched.  Tests
        that need exact retry counts therefore keep one shard in flight
        (single-worker pool).
        """
        victims = list(victims or [])
        victims.extend((idx, attempt)
                       for _fut, (idx, attempt, _d) in inflight.items())
        inflight.clear()
        _kill_pool(pool)
        self._note_respawn()
        for idx, attempt in victims:
            self._retry_or_degrade(idx, attempt, "broken-pool", queue)
        return None


# -- the campaign entry point -------------------------------------------------


def run_sharded_campaign(
    version_a: DiverseVersion,
    version_b: DiverseVersion,
    oracle_output: Iterable[int],
    n_trials: int,
    rng: SeedLike,
    injector: FaultInjector,
    *,
    round_instructions: int = 2_000,
    memory_words: int = 256,
    n_workers: Union[int, str, None] = None,
    shard_size: Optional[int] = None,
    cache: Optional[CampaignCache] = None,
    max_rounds: int = 4_000,
    journal: Optional[CampaignJournal] = None,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> CampaignResult:
    """Shard, (optionally) fan out, merge — preserving exact results.

    The per-trial seed tree is spawned once from ``rng``; shards receive
    contiguous seed slices, so the merged trial sequence is identical
    for every worker count, and cached shards short-circuit computation.

    Telemetry follows the same merge discipline: the active tracer (if
    any) adopts worker trace events in shard order under one
    ``campaign`` span, the active registry folds worker counters in, and
    cache-hit shards *replay* their trials into the counters — the
    merged ``campaign_outcome_total`` family therefore always equals
    ``CampaignResult.outcome_counts()`` of the returned result.

    Crash safety: worker failures, hung shards, and dead pools are
    retried per ``fault_tolerance`` (default: the ``VDS_SHARD_*``
    environment knobs, see :class:`FaultTolerance`).  When ``journal``
    is given, every completed shard is recorded in its CRC-sealed
    ledger *after* the shard's result is stored in ``cache``, so an
    interrupted run resumed with the same journal + cache re-executes
    only the missing shards and still merges bit-identically.
    """
    tracer = active_or_none()
    metrics = get_registry()
    workers = resolve_workers(n_workers)
    master = derive_seed_sequence(rng)
    shards = plan_shards(n_trials, shard_size)
    oracle = tuple(oracle_output)
    ft = fault_tolerance if fault_tolerance is not None \
        else FaultTolerance.from_env()
    fingerprint = None
    if cache is not None or journal is not None:
        fingerprint = campaign_fingerprint(
            version_a,
            version_b,
            oracle,
            n_trials,
            master,
            injector,
            round_instructions,
            memory_words,
            max_rounds,
        )
    if journal is not None and journal.fingerprint != fingerprint:
        from repro.errors import JournalError

        raise JournalError(
            f"journal {journal.run_id!r} was created for campaign "
            f"{journal.fingerprint[:12]}…, but this invocation computes "
            f"{fingerprint[:12]}… — the configuration changed"
        )
    if journal is not None and cache is None:
        logger.warning(
            "journal %s active without a shard cache: progress is "
            "recorded but a resume will recompute every shard",
            journal.run_id,
        )
    seeds = master.spawn(n_trials)
    if tracer is not None:
        campaign_span = tracer.start(
            "campaign",
            vt=0,
            n_trials=n_trials,
            mode="sharded",
            workers=workers,
            shards=len(shards),
            vds_interpreter=default_backend(),
        )
    else:
        campaign_span = None
    if metrics is not None:
        record_interpreter_metric(metrics)

    ledger = journal.completed_shards() if journal is not None else {}
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    corrupt_before = cache.corrupt if cache is not None else 0
    results: list[Optional[CampaignResult]] = [None] * len(shards)
    pending: list[int] = []
    try:
        for idx, (start, count) in enumerate(shards):
            if cache is not None:
                hit = cache.lookup(fingerprint, start, count)
                if hit is not None:
                    entry = ledger.get((start, count))
                    expected = entry.get("digest") if entry else None
                    if expected is not None and hit.digest() != expected:
                        # The cache entry is internally consistent but is
                        # not the shard this run's ledger recorded (e.g. a
                        # foreign file copied over it).  Recompute.
                        logger.warning(
                            "cache entry for shard %s does not match the "
                            "journal digest; recomputing",
                            shard_id(start, count),
                        )
                        pending.append(idx)
                        continue
                    results[idx] = hit
                    if journal is not None:
                        journal.record_shard(start, count,
                                             digest=hit.digest(),
                                             source="cache")
                    if tracer is not None:
                        tracer.point(
                            "campaign.shard.cached", vt=start, start=start,
                            count=count
                        )
                    if metrics is not None:
                        record_block_metrics(metrics, hit)
                    continue
            pending.append(idx)

        tasks = []
        for idx in pending:
            start, count = shards[idx]
            tasks.append(
                _ShardTask(
                    version_a,
                    version_b,
                    oracle,
                    tuple(seeds[start : start + count]),
                    injector,
                    round_instructions,
                    memory_words,
                    max_rounds,
                    first_trial_index=start,
                    collect_trace=tracer is not None,
                    collect_metrics=metrics is not None,
                    backend=default_backend(),
                )
            )

        def on_complete(pos: int, output: _ShardOutput) -> None:
            """Persist one computed shard the moment it lands.

            Ordering matters for crash safety: the cache entry is
            durable *before* the ledger marks the shard complete, so a
            kill between the two can only under-report progress (one
            extra recompute on resume), never fabricate it.
            """
            sidx = pending[pos]
            start, count = shards[sidx]
            if cache is not None:
                cache.store(fingerprint, start, count, output.result)
            if journal is not None:
                journal.record_shard(start, count,
                                     digest=output.result.digest(),
                                     source="computed")
            if metrics is not None:
                metrics.counter("campaign_shards_executed_total").inc()

        pool_workers = min(workers, len(tasks)) if tasks else 0
        force_pool = os.environ.get("VDS_FORCE_POOL", "") not in ("", "0")
        runner = _ShardRunner(tasks, max(pool_workers, 1), ft, tracer,
                              metrics, campaign_span, on_complete,
                              journal=journal)
        if tasks:
            if pool_workers > 1 or force_pool:
                outputs = runner.run_pool()
            else:
                outputs = runner.run_serial()
        else:
            outputs = {}

        profiler = None
        for pos in range(len(tasks)):
            output = outputs[pos]
            idx = pending[pos]
            results[idx] = output.result
            if tracer is not None and output.trace_events is not None:
                tracer.adopt(output.trace_events, parent_id=campaign_span)
            if metrics is not None and output.metrics is not None:
                metrics.merge_dict(output.metrics)
                if output.profile is not None:
                    # Each shard times exactly one "campaign.shard" section.
                    metrics.histogram(
                        "campaign_shard_seconds",
                        buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60),
                    ).observe(output.profile["campaign.shard"]["total"])
            if output.profile is not None:
                if profiler is None:
                    profiler = Profiler()
                profiler.merge_dict(output.profile)

        if metrics is not None and cache is not None:
            metrics.counter("campaign_cache_hits_total").inc(
                cache.hits - hits_before
            )
            metrics.counter("campaign_cache_misses_total").inc(
                cache.misses - misses_before
            )
            if cache.corrupt > corrupt_before:
                metrics.counter("campaign_cache_corrupt_total").inc(
                    cache.corrupt - corrupt_before
                )
    finally:
        if tracer is not None:
            tracer.end(campaign_span, vt=n_trials)
    if profiler is not None and profiler.sections:
        logger.debug("shard wall-clock profile:\n%s", profiler.report())
    logger.info(
        "sharded campaign done: %d trials in %d shards (%d cached) "
        "across %d workers (%d retries, %d respawns%s)",
        n_trials,
        len(shards),
        len(shards) - len(pending),
        workers,
        sum(v for v in (
            metrics.counter_values("campaign_shard_retries_total").values()
            if metrics is not None else ()
        )),
        runner.respawns if tasks else 0,
        ", degraded" if tasks and runner.degraded else "",
    )
    result = CampaignResult.merge(results)
    if journal is not None:
        journal.mark_complete(result.digest(), n_trials)
    return result
