"""Process-pool execution of sharded campaigns and generic trial maps.

The executor owns *how* shards run (in-process or on a
:class:`~concurrent.futures.ProcessPoolExecutor`); the result is the
same either way because every shard's randomness is fixed by its
per-trial seed sequences (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.diversity.generator import DiverseVersion
from repro.faults.campaign import CampaignResult, run_trial_block
from repro.faults.injector import FaultInjector
from repro.parallel.cache import CampaignCache, campaign_fingerprint
from repro.parallel.sharding import plan_shards, resolve_workers
from repro.sim.rng import SeedLike, derive_seed_sequence

__all__ = ["parallel_map", "run_sharded_campaign"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` where it is safe (fast start, no re-import)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and sys.platform != "darwin":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    n_workers: Union[int, str, None] = None,
) -> list[_R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results come back in input order regardless of completion order, so
    a caller is worker-count-oblivious as long as ``fn`` is a pure
    function of its item.  ``fn`` and the items must be picklable when
    more than one worker is used.
    """
    workers = min(resolve_workers(n_workers), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        return list(pool.map(fn, items, chunksize=1))


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to run one shard."""

    version_a: DiverseVersion
    version_b: DiverseVersion
    oracle_output: tuple[int, ...]
    seeds: tuple[np.random.SeedSequence, ...]
    injector: FaultInjector
    round_instructions: int
    memory_words: int
    max_rounds: int


def _execute_shard(task: _ShardTask) -> CampaignResult:
    return run_trial_block(
        task.version_a,
        task.version_b,
        task.oracle_output,
        task.seeds,
        task.injector,
        task.round_instructions,
        task.memory_words,
        task.max_rounds,
    )


def run_sharded_campaign(
    version_a: DiverseVersion,
    version_b: DiverseVersion,
    oracle_output: Iterable[int],
    n_trials: int,
    rng: SeedLike,
    injector: FaultInjector,
    *,
    round_instructions: int = 2_000,
    memory_words: int = 256,
    n_workers: Union[int, str, None] = None,
    shard_size: Optional[int] = None,
    cache: Optional[CampaignCache] = None,
    max_rounds: int = 4_000,
) -> CampaignResult:
    """Shard, (optionally) fan out, merge — preserving exact results.

    The per-trial seed tree is spawned once from ``rng``; shards receive
    contiguous seed slices, so the merged trial sequence is identical
    for every worker count, and cached shards short-circuit computation.
    """
    workers = resolve_workers(n_workers)
    master = derive_seed_sequence(rng)
    shards = plan_shards(n_trials, shard_size)
    oracle = tuple(oracle_output)
    fingerprint = None
    if cache is not None:
        fingerprint = campaign_fingerprint(
            version_a,
            version_b,
            oracle,
            n_trials,
            master,
            injector,
            round_instructions,
            memory_words,
            max_rounds,
        )
    seeds = master.spawn(n_trials)

    results: list[Optional[CampaignResult]] = [None] * len(shards)
    pending: list[int] = []
    for idx, (start, count) in enumerate(shards):
        if cache is not None:
            hit = cache.lookup(fingerprint, start, count)
            if hit is not None:
                results[idx] = hit
                continue
        pending.append(idx)

    tasks = []
    for idx in pending:
        start, count = shards[idx]
        tasks.append(
            _ShardTask(
                version_a,
                version_b,
                oracle,
                tuple(seeds[start : start + count]),
                injector,
                round_instructions,
                memory_words,
                max_rounds,
            )
        )
    computed = parallel_map(_execute_shard, tasks, workers)
    for idx, shard_result in zip(pending, computed):
        results[idx] = shard_result
        if cache is not None:
            start, count = shards[idx]
            cache.store(fingerprint, start, count, shard_result)
    return CampaignResult.merge(results)
