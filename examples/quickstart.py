"""Quickstart: the paper's headline numbers in a dozen lines each.

Run:
    python examples/quickstart.py

Covers:
1. the analytical model (round gain, recovery gains, G_max ≈ 1.38),
2. a discrete-event VDS mission with one fault on both architectures,
3. the regenerated Fig. 1 timeline.
"""

from repro.core import (
    VDSParameters,
    deterministic_mean_gain,
    gain_limit,
    prediction_scheme_mean_gain,
    probabilistic_mean_gain,
    round_gain,
)
from repro.vds import (
    ConventionalTiming,
    FaultEvent,
    FaultPlan,
    SMT2Timing,
    build_timeline,
    render_timeline,
    run_mission,
)
from repro.vds.recovery import PredictionScheme, StopAndRetry


def model_headlines() -> None:
    """Part 1 — the closed-form model at the paper's operating point."""
    params = VDSParameters(alpha=0.65, beta=0.1, s=20)
    print("== The analytical model (alpha=0.65, beta=0.1, s=20) ==")
    print(f"normal-phase gain   G_round = {round_gain(params):.3f}")
    print(f"deterministic       G_det   = {deterministic_mean_gain(params):.3f}")
    print(f"probabilistic p=.5  G_prob  = "
          f"{probabilistic_mean_gain(params, 0.5):.3f}")
    print(f"prediction    p=.5  G_corr  = "
          f"{prediction_scheme_mean_gain(params, 0.5):.3f}")
    print(f"limit (s->inf)      G_max   = {gain_limit(params, 0.5):.3f}"
          "   <- the paper's 1.38")
    print()


def one_fault_mission() -> None:
    """Part 2 — simulate the same fault on both architectures."""
    params = VDSParameters(alpha=0.65, beta=0.1, s=20)
    plan = FaultPlan.from_events([FaultEvent(round=7, victim=2)])

    conv = run_mission(ConventionalTiming(params), StopAndRetry(), plan, 40)
    smt = run_mission(SMT2Timing(params), PredictionScheme(), plan, 40,
                      seed=1)
    print("== One fault at round 7, 40-round mission ==")
    print(f"conventional + stop-and-retry : {conv.total_time:7.2f} time units")
    print(f"SMT + prediction roll-forward : {smt.total_time:7.2f} time units")
    print(f"mission speedup               : "
          f"{conv.total_time / smt.total_time:7.3f}")
    rec = smt.recoveries[0]
    print(f"SMT recovery: duration {rec.duration:.2f}, rolled forward "
          f"{rec.progress} rounds "
          f"(prediction {'hit' if rec.prediction_hit else 'miss'})")
    print()
    print("== Fig. 1(b): the first 15 time units of the SMT mission ==")
    print(render_timeline(build_timeline(smt.trace, 0, 15), width=90))


if __name__ == "__main__":
    model_headlines()
    one_fault_mission()
