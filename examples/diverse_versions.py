"""Diverse versions under the microscope: why a VDS needs diversity.

Builds the paper's three-version VDS for a real (small) program on the
register-machine ISA, shows what the generated versions look like, and
injects faults to demonstrate the division of labour:

* a *transient* register flip corrupts one version → the end-of-round
  state comparison catches it within a round or two;
* a *permanent* ALU stuck-at hits both versions (same processor!) —
  with two identical copies it corrupts both results identically
  (silent data corruption), with diverse versions the corruptions
  differ and the comparator fires.

Run:
    python examples/diverse_versions.py
"""

import numpy as np

from repro.diversity import generate_versions
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultOutcome,
    FaultSpec,
    run_campaign,
    run_duplex_trial,
)
from repro.isa import disassemble, load_program


def show_versions() -> tuple:
    program, inputs, spec = load_program("insertion_sort")
    versions = generate_versions(program, inputs, n=3, seed=42)
    print("== Generated version set for 'insertion_sort' ==")
    for v in versions:
        kind = "original" if v.is_original else ", ".join(v.transforms)
        mask = (f", data mask 0x{v.encoding_mask:08X}"
                if v.encoding_mask else "")
        print(f"  V{v.index}: {len(v.program):3d} instructions ({kind}{mask})")
    print()
    print("First lines of V1 vs V2 (register allocation and instruction "
          "selection differ):")
    for a, b in list(zip(disassemble(list(versions[0].program)).splitlines(),
                         disassemble(list(versions[1].program)).splitlines()))[:8]:
        print(f"  {a:36s} | {b}")
    print()
    return versions, spec


def single_trials(versions, spec) -> None:
    oracle = spec.oracle()
    print("== Single-fault trials (duplex V1/V2) ==")
    flip = FaultSpec(FaultKind.TRANSIENT_MEMORY, at_instruction=40,
                     address=3, bit=20)
    res = run_duplex_trial(versions[0], versions[1], flip, victim=1,
                           oracle_output=oracle)
    print(f"transient mem[3] bit-20 flip : {res.outcome.value} "
          f"(latency {res.detection_latency} rounds)")

    crash = FaultSpec(FaultKind.CRASH, at_instruction=100)
    res = run_duplex_trial(versions[0], versions[1], crash, victim=2,
                           oracle_output=oracle)
    print(f"crash fault              : {res.outcome.value}")
    print()


def permanent_contrast(versions, spec) -> None:
    oracle = spec.oracle()
    print("== Permanent ALU stuck-at campaign: identical vs diverse ==")
    for label, pair in [("identical copies", (versions[0], versions[0])),
                        ("diverse pair", (versions[0], versions[2]))]:
        inj = FaultInjector(np.random.default_rng(5),
                            mix={FaultKind.PERMANENT_ALU: 1.0})
        res = run_campaign(pair[0], pair[1], oracle, 100,
                           np.random.default_rng(6), injector=inj)
        silent = res.count(FaultOutcome.SILENT_CORRUPTION)
        print(f"  {label:18s}: coverage {res.coverage:6.1%}, "
              f"{silent} silent corruptions / {res.n} trials")
    print()
    print("Diversity turns would-be silent corruptions into detected "
          "mismatches — the fault-model assumption of paper §2.1.")


if __name__ == "__main__":
    versions, spec = show_versions()
    single_trials(versions, spec)
    permanent_contrast(versions, spec)
