"""Space-mission scenario: the paper's motivating use case, end to end.

"An example are soft mission critical systems, e.g. computers that serve
scientific experiments on space missions.  Here, a single experiment is
not mission critical, its failure however still is expensive.  In outer
space transient faults are much more frequent due to radiation" (§1).

This example plans a 50 000-round on-orbit computation:

1. pick the radiation environment (LEO vs deep space presets),
2. draw a fault plan from the environment's Poisson process, with a
   biased victim distribution (one version exercises a weak unit more)
   and a crash fraction,
3. run the mission on the conventional and the SMT VDS, the latter with
   a learning fault-history predictor,
4. report completion time, availability, detection exposure.

Run:
    python examples/space_mission.py [leo|deep-space]
"""

import sys

import numpy as np

from repro.analysis.metrics import availability, double_fault_probability
from repro.core import VDSParameters
from repro.faults.rates import ENVIRONMENTS
from repro.predict import TwoBitPredictor
from repro.vds import ConventionalTiming, FaultPlan, SMT2Timing, run_mission
from repro.vds.recovery import PredictionScheme, StopAndRetry

MISSION_ROUNDS = 50_000
VICTIM_BIAS = 0.8        # process variation: version 1 hits the weak unit
CRASH_FRACTION = 0.15


def main(env_name: str = "deep-space") -> None:
    env = ENVIRONMENTS[env_name]
    params = VDSParameters(alpha=0.65, beta=0.1, s=20)
    print(f"Environment: {env.name} — {env.description} "
          f"({env.seu_per_million_rounds:g} SEU per million rounds)")

    # One fault plan, replayed against both architectures (common random
    # numbers — the comparison is apples to apples).
    rng = np.random.default_rng(2026)
    process = env.poisson(rounds_per_time_unit=1.0)
    plan = FaultPlan.from_arrivals(process, rng, MISSION_ROUNDS,
                                   victim_bias=VICTIM_BIAS,
                                   crash_fraction=CRASH_FRACTION)
    print(f"Fault plan: {len(plan)} faults over {MISSION_ROUNDS} rounds "
          f"(victim bias {VICTIM_BIAS}, {CRASH_FRACTION:.0%} crashes)")

    conv = run_mission(ConventionalTiming(params), StopAndRetry(), plan,
                       MISSION_ROUNDS, record_trace=False)
    smt = run_mission(SMT2Timing(params), PredictionScheme(), plan,
                      MISSION_ROUNDS, record_trace=False,
                      predictor=TwoBitPredictor(np.random.default_rng(7)))

    print()
    print(f"{'':34s}{'conventional':>14s}{'SMT (2-way)':>14s}")
    print(f"{'mission completion time':34s}{conv.total_time:14.0f}"
          f"{smt.total_time:14.0f}")
    print(f"{'recoveries':34s}{len(conv.recoveries):14d}"
          f"{len(smt.recoveries):14d}")
    print(f"{'time in recovery':34s}{conv.recovery_time_total:14.1f}"
          f"{smt.recovery_time_total:14.1f}")
    a_conv = availability(conv.total_time, conv.recovery_time_total)
    a_smt = availability(smt.total_time, smt.recovery_time_total)
    print(f"{'availability':34s}{a_conv:14.4f}{a_smt:14.4f}")
    print(f"{'mission speedup':34s}{'':14s}"
          f"{conv.total_time / smt.total_time:14.3f}")
    acc = smt.prediction_accuracy
    if acc is not None:
        print(f"{'predictor accuracy (learned p)':34s}{'':14s}{acc:14.3f}")

    # Residual risk: both versions corrupted inside one comparison window.
    rate = process.rate
    window = SMT2Timing(params).normal_round()
    print()
    print(f"P(double fault inside one SMT comparison window) = "
          f"{double_fault_probability(rate, window):.2e}")
    print("(the reason VDS compares every round rather than every "
          "checkpoint, cf. paper §2.2)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "deep-space")
