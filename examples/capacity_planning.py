"""Capacity planning: pick a fault-tolerant design point (§5 trade-offs).

A systems architect must deliver a given VDS throughput and chooses among:

* a conventional processor at full clock (baseline),
* a 2-way SMT processor at full clock (fastest),
* a 2-way SMT processor *down-clocked to baseline performance*
  (cheapest to power/cool — "lower cost, lower power consumption and
  lower heat dissipation", §5),
* a true duplex system (two processors — what the VDS's "cost advantage
  over duplex systems" is measured against).

Run:
    python examples/capacity_planning.py
"""

from repro.analysis.report import render_table
from repro.core import VDSParameters, round_gain
from repro.core.frequency import (
    PowerModel,
    duplex_die_area_factor,
    equal_performance_frequency_scale,
    smt_die_area_factor,
)


def main() -> None:
    params = VDSParameters(alpha=0.65, beta=0.1, s=20)
    dvfs = PowerModel(voltage_exponent=1.0, static_fraction=0.1)

    g = round_gain(params)
    scale = equal_performance_frequency_scale(params)

    rows = [
        # [design, relative throughput, relative power, die area]
        ["conventional, full clock", 1.0, 1.0, 1.0],
        ["SMT, full clock", g, 1.0, smt_die_area_factor()],
        ["SMT, down-clocked (equal perf.)", 1.0,
         dvfs.relative_power(scale), smt_die_area_factor()],
        ["true duplex (2 processors)", 1.0, 2.0, duplex_die_area_factor()],
    ]
    print(render_table(
        ["design point", "VDS throughput", "power", "die area"],
        rows,
        title=f"Design points at alpha = {params.alpha}, beta = "
              f"{params.beta} (throughput/power/area relative to the "
              "conventional baseline)"))

    print(f"The SMT VDS meets baseline throughput at a "
          f"{scale:.2f}x clock, drawing {dvfs.relative_power(scale):.2f}x "
          f"power — versus 2.0x power and 2.0x silicon for a true duplex "
          f"system with comparable (better) fault coverage.")
    print()

    # Sensitivity: how the picture changes if the processor's SMT
    # implementation is weaker (higher alpha).
    rows = []
    for alpha in (0.5, 0.6, 0.65, 0.7, 0.8, 0.9):
        p = VDSParameters(alpha=alpha, beta=0.1, s=20)
        s = equal_performance_frequency_scale(p)
        rows.append([alpha, round_gain(p), s, dvfs.relative_power(s)])
    print(render_table(
        ["alpha", "G_round", "equal-perf clock scale", "relative power"],
        rows, title="Sensitivity to the processor's SMT efficiency"))


if __name__ == "__main__":
    main()
