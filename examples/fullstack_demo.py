"""The whole stack at once: real diverse versions on the cycle-level core.

Every other example uses either the closed-form model or the abstract
discrete-event simulation.  This one runs the paper's system *for real*:

* three diverse versions of a matrix-multiply program (register
  permutation / instruction substitution / XOR-encoded execution),
* executing on the slot-level SMT core (issue slots, ALU port, shared
  cache) — in conventional (time-shared) and SMT (parallel) mode,
* with memory bit-flips injected at round boundaries, caught by the
  decoded-state comparison and repaired by stop-and-retry resp. the §4
  prediction roll-forward,

and checks the cycle-count gain against the analytical model fed this
workload's *measured* α.

Run:
    python examples/fullstack_demo.py
"""

from repro.core import VDSParameters, round_gain
from repro.fullstack import FullStackConfig, FullStackVDS
from repro.fullstack.system import FullFault
from repro.smt.contention import measure_alpha

PROGRAM = "matmul"
PARAMS = {"a": [[3, 1, 4], [1, 5, 9], [2, 6, 5]],
          "b": [[3, 5, 8], [9, 7, 9], [3, 2, 3]]}


def main() -> None:
    systems = {
        mode: FullStackVDS(FullStackConfig(
            program=PROGRAM, program_params=PARAMS, mode=mode, s=3,
        ))
        for mode in ("conventional", "smt")
    }
    rounds = systems["smt"].total_rounds
    print(f"Program '{PROGRAM}' compiled into 3 diverse versions, "
          f"{rounds} rounds each (checkpoint every 3).")

    faults = [FullFault(round=2, victim=1, address=4, bit=21),
              FullFault(round=rounds - 1, victim=2, address=7, bit=19)]
    print(f"Injecting {len(faults)} memory bit-flips at round boundaries.")
    print()
    print(f"{'mission':28s}{'conventional':>14s}{'SMT':>10s}")
    gains = {}
    for label, plan in (("fault-free", []), ("with faults", faults)):
        cycles = {}
        for mode, vds in systems.items():
            res = vds.run(plan)
            assert res.outputs_ok, f"{mode} computed a wrong product!"
            cycles[mode] = res.total_cycles
        gains[label] = cycles["conventional"] / cycles["smt"]
        print(f"{label:28s}{cycles['conventional']:14d}"
              f"{cycles['smt']:10d}   gain {gains[label]:.3f}")

    alpha = measure_alpha(PROGRAM, PROGRAM,
                          systems["smt"].config.core,
                          params_a=PARAMS, params_b=PARAMS).alpha
    print()
    print(f"Measured alpha of this workload on the core: {alpha:.3f}")
    model = VDSParameters(alpha=max(0.5, min(1.0, alpha)), beta=0.1, s=3)
    print(f"Analytical G_round at that alpha (beta = 0.1): "
          f"{round_gain(model):.3f} — the full stack lands in the same "
          "band from five layers below the model.")


if __name__ == "__main__":
    main()
