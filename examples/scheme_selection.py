"""Recovery-scheme selection across the (α, p, threads) design space.

The paper offers four SMT recovery schemes plus two §5 boosted variants;
which is best depends on the processor's SMT efficiency α (and its scaling
to more threads) and on how well faults can be predicted (p).  This
example sweeps the space, prints the winner per cell, and cross-checks one
cell with the discrete-event simulator.

Run:
    python examples/scheme_selection.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core import VDSParameters
from repro.core.multi_thread_ext import best_scheme
from repro.core.params import AlphaCurve
from repro.predict import OraclePredictor
from repro.vds import FaultEvent, FaultPlan, SMTnTiming, run_mission
from repro.vds.recovery import (
    BoostedDeterministic,
    PredictionScheme,
)


def winners_table() -> None:
    rows = []
    for alpha in (0.5, 0.55, 0.6, 0.65, 0.7, 0.8):
        row = [alpha]
        for p in (0.5, 0.7, 0.9, 1.0):
            params = VDSParameters(alpha=alpha, beta=0.1, s=20)
            curve = AlphaCurve(alpha2=alpha)
            name, gain = best_scheme(params, p, curve)
            row.append(f"{name} ({gain:.2f})")
        rows.append(row)
    print(render_table(
        ["alpha", "p=0.5", "p=0.7", "p=0.9", "p=1.0"],
        rows,
        title="Best recovery scheme (mean gain) per (alpha, p); "
              "alpha(n) from the saturating contention curve"))


def cross_check() -> None:
    """Simulate the alpha=0.5, p=0.5 cell where the 5-thread boost wins."""
    params = VDSParameters(alpha=0.5, beta=0.1, s=20)
    curve = AlphaCurve(alpha2=0.5)
    plan = FaultPlan.from_events(
        [FaultEvent(round=r) for r in (4, 29, 51, 77)]
    )
    rng = np.random.default_rng(0)

    t5 = SMTnTiming(params, hardware_threads=5, curve=curve)
    boosted = run_mission(t5, BoostedDeterministic(), plan, 100,
                          record_trace=False)
    t2 = SMTnTiming(params, hardware_threads=2, curve=curve)
    pred = run_mission(t2, PredictionScheme(), plan, 100,
                       predictor=OraclePredictor(rng, 0.5),
                       record_trace=False)
    print("DES cross-check at alpha=0.5, p=0.5 (100 rounds, 4 faults):")
    print(f"  5-thread boosted deterministic : {boosted.total_time:8.2f} "
          f"time units, {sum(r.progress for r in boosted.recoveries)} "
          "rounds rolled forward")
    print(f"  2-thread prediction (p = 0.5)  : {pred.total_time:8.2f} "
          f"time units, {sum(r.progress for r in pred.recoveries)} "
          "rounds rolled forward")
    better = ("boosted" if boosted.total_time < pred.total_time
              else "prediction")
    print(f"  -> {better} wins, as the analytic table predicts")


if __name__ == "__main__":
    winners_table()
    cross_check()
